"""Failure injection: components die at awkward moments.

The paper's §2 design goal: the broker "doesn't compromise the security of
the network ... even if it malfunctions", and its use is optional.  These
tests pin the corresponding behaviours: jobs outlive the broker; machines
are reclaimed when monitoring pieces die; nothing crashes.
"""

import pytest

from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy


def test_job_survives_broker_death(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == 2

    svc.broker_proc.signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 10.0)

    # The job and its workers keep running, unmanaged.
    assert handle.proc.is_alive
    workers = [
        p
        for m in cluster4.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "gracespin"
    ]
    assert len(workers) == 2
    cluster4.assert_no_crashes()


def test_app_death_reclaims_remote_machines(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)

    handle.proc.signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 10.0)

    # The subapps saw their app connection drop and killed the workers: no
    # guest computation is left on any *remote* machine.  (The job's local
    # master survives as an orphan — SIGKILL to the app cannot clean up its
    # children, exactly as on real Unix.)
    leftovers = [
        p
        for m in cluster4.machines.values()
        for p in m.procs.values()
        if p.argv[0] in ("gracespin", "subapp")
    ]
    assert leftovers == []
    # The broker freed the allocations on app-connection EOF.
    assert svc.holdings() == {}
    cluster4.assert_no_crashes()


def test_subapp_death_releases_machine(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    (held,) = svc.holdings()[job.jobid]

    subapps = [
        p
        for p in cluster4.machine(held).procs.values()
        if p.argv[0] == "subapp"
    ]
    assert len(subapps) == 1
    subapps[0].signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 5.0)

    # The app reported the machine released... and the adaptive job's grow
    # loop immediately re-acquired a replacement.
    releases = svc.events_of("released")
    assert any(e["host"] == held for e in releases)
    assert len(svc.holdings().get(job.jobid, [])) == 1
    cluster4.assert_no_crashes()


def test_worker_killed_by_machine_user_is_replaced(cluster4):
    """Someone on the machine kills the guest computation: the broker's
    bookkeeping stays consistent and the adaptive job recovers."""
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    before = svc.holdings()[job.jobid]
    assert len(before) == 3

    victim_host = before[0]
    workers = [
        p
        for p in cluster4.machine(victim_host).procs.values()
        if p.argv[0] == "gracespin"
    ]
    workers[0].signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 8.0)

    after = svc.holdings()[job.jobid]
    assert len(after) == 3
    cluster4.assert_no_crashes()


def test_revoke_races_with_natural_worker_exit(cluster4):
    """A machine is revoked in the same breath as its job finishing: the
    broker must not deadlock or double-allocate."""
    svc = cluster4.broker

    @cluster4.system_bin.register("brief")
    def brief(proc):
        yield proc.compute(3.0)
        return 0

    @cluster4.system_bin.register("briefmaster")
    def briefmaster(proc):
        child = proc.spawn(["rsh", "anylinux", "brief"])
        yield proc.wait(child)
        yield proc.sleep(30.0)

    handle = svc.submit("n00", ["briefmaster"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 2.0)

    @cluster4.system_bin.register("hold")
    def hold(proc):
        yield proc.sleep(50.0)

    # Firm jobs demand all machines right as `brief` is about to finish.
    rigid = [
        svc.submit("n00", ["rsh", "anylinux", "hold"]) for _ in range(3)
    ]
    cluster4.env.run(until=cluster4.now + 20.0)
    holdings = svc.holdings()
    rigid_jobs = [h.job_record() for h in rigid]
    assert all(j is not None for j in rigid_jobs)
    total = sum(len(v) for v in holdings.values())
    assert total == 3
    # No machine double-booked.
    all_hosts = [h for hosts in holdings.values() for h in hosts]
    assert len(all_hosts) == len(set(all_hosts))
    cluster4.assert_no_crashes()


def test_daemon_death_does_not_disturb_running_job(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()

    for host in ("n01", "n02"):
        daemons = [
            p
            for p in cluster4.machine(host).procs.values()
            if p.argv[0] == "rbdaemon"
        ]
        for d in daemons:
            d.signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 10.0)

    # Daemons restarted; allocations untouched; workers still running.
    assert len(svc.holdings()[job.jobid]) == 2
    assert len(svc.events_of("daemon_restart")) == 2
    cluster4.assert_no_crashes()
