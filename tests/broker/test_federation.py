"""Federated control plane: sharding, borrowing, recall and recovery.

Integration tests for DESIGN.md §17 at the scale unit tests can afford:
two-to-three shard federations over a handful of machines, driving the
borrow protocol end to end — forward, loan, cross-shard grant, return —
plus its unhappy paths: owner-return recall of a loaned machine and a
borrower-shard crash with a live loan (durable shards must recover the
borrowed record and finish the job, with zero double grants).
"""

import pytest

from repro.broker.federation import shard_partitions
from repro.cluster import Cluster, ClusterSpec, MachineSpec


def test_shard_partitions_contiguous_and_validated():
    hosts = [f"n{i:02d}" for i in range(10)]
    parts = shard_partitions(hosts, 4)
    assert [len(p) for p in parts] == [3, 2, 3, 2]
    assert [h for part in parts for h in part] == hosts
    # The same split-point formula as the kernel's machine->lane map.
    assert shard_partitions(hosts, 1) == [hosts]
    with pytest.raises(ValueError):
        shard_partitions(hosts, 0)
    with pytest.raises(ValueError):
        shard_partitions(hosts, 11)


def test_locality_routing_and_jobid_stride():
    cluster = Cluster(ClusterSpec.uniform(8, seed=1))
    federation = cluster.start_federation(shards=2)
    federation.wait_ready()
    assert federation.shard_of("n02") == 0
    assert federation.shard_of("n06") == 1
    a = federation.submit("n01", ["compute", "3"], uid="u")
    b = federation.submit("n05", ["compute", "3"], uid="u")
    cluster.env.run(until=cluster.now + 30.0)
    # Each job lives only in its home shard, and the jobid spaces are
    # strided per shard so merged logs never collide.
    assert sorted(federation.services[0].state.jobs) == [1]
    assert sorted(federation.services[1].state.jobs) == [1_000_001]
    assert a.exit_code == 0 and b.exit_code == 0


def test_cross_shard_borrow_grant_and_return():
    cluster = Cluster(ClusterSpec.uniform(8, seed=3))
    federation = cluster.start_federation(shards=2)
    federation.wait_ready()
    # Shard 0 manages n00-n03; a 4-wide adaptive job from n00 has only
    # three local candidates, so the fourth worker must be borrowed.
    handle = federation.submit(
        "n00", ["calypso", "30", "2.0", "4"], rsl="+(adaptive)", uid="cal"
    )
    for _ in range(120):  # poll: the loan is live only mid-flight
        cluster.env.run(until=cluster.now + 1.0)
        borrower, donor = federation.federation_stats()
        if borrower["borrowed_machines"] >= 1:
            break
    assert borrower["borrowed_machines"] >= 1
    assert borrower["cross_shard_grants"] >= 1
    assert borrower["forwards"] >= 1
    assert donor["loaned_machines"] >= 1
    assert donor["loans_out"] >= 1
    cluster.env.run(until=300.0)
    assert handle.exit_code == 0
    cluster.assert_no_crashes()
    borrower, donor = federation.federation_stats()
    # The loan was returned: no borrowed records linger on the borrower,
    # nothing stays MIGRATING on the donor, and the machine is free again.
    assert borrower["borrowed_machines"] == 0
    assert donor["loaned_machines"] == 0
    assert borrower["returns"] >= 1
    assert all(
        record.allocation is None
        for service in federation.services
        for record in service.state.machines.values()
    )
    assert borrower["double_grants"] == 0 and donor["double_grants"] == 0


def test_loan_recall_on_owner_return():
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="n02"),
            MachineSpec(name="n03"),
            MachineSpec(name="p00", private_owner="ann"),
        ],
        seed=2,
    )
    cluster = Cluster(spec)
    federation = cluster.start_federation(shards=2)
    assert federation.partitions == [["n00", "n01", "n02"], ["n03", "p00"]]
    federation.wait_ready()
    # Two local candidates for a 4-wide job: both of shard 1's machines —
    # including ann's idle private one — get loaned across.
    handle = federation.submit(
        "n00", ["calypso", "60", "2.0", "4"], rsl="+(adaptive)", uid="cal"
    )
    donor = federation.services[1]
    for _ in range(120):  # poll until the private machine is loaned out
        cluster.env.run(until=cluster.now + 1.0)
        if donor.state.machine("p00").allocation is not None:
            break
    assert donor.state.machine("p00").allocation is not None
    # Ann sits down at her console.  Her shard observes it through the
    # daemon report and recalls the loan; the borrower revokes the worker
    # and the adaptive job shrinks instead of dying.
    cluster.machine("p00").console_active = True
    cluster.env.run(until=cluster.now + 60.0)
    stats = federation.federation_stats()
    assert stats[1]["recalls"] >= 1
    assert "p00" not in federation.services[0].state.machines
    assert donor.state.machine("p00").allocation is None
    cluster.env.run(until=600.0)
    assert handle.exit_code == 0
    cluster.assert_no_crashes()
    assert sum(blk["double_grants"] for blk in federation.federation_stats()) == 0


def test_borrower_crash_recovers_live_loan():
    cluster = Cluster(ClusterSpec.uniform(8, seed=5))
    federation = cluster.start_federation(shards=2, journal=True)
    federation.wait_ready()
    handle = federation.submit(
        "n00", ["calypso", "40", "2.0", "4"], rsl="+(adaptive)", uid="cal"
    )
    borrower = federation.services[0]

    def live_loans():
        return [
            host
            for host, record in borrower.state.machines.items()
            if record.borrowed_from is not None
        ]

    for _ in range(120):  # poll: crash while the loan is live
        cluster.env.run(until=cluster.now + 1.0)
        if live_loans():
            break
    assert live_loans(), "expected a live loan before the crash"
    borrower.crash_broker()
    cluster.env.run(until=cluster.now + 5.0)
    borrower.restart_broker()
    cluster.env.run(until=600.0)
    assert handle.exit_code == 0
    cluster.assert_no_crashes()
    stats = federation.federation_stats()
    assert sum(blk["double_grants"] for blk in stats) == 0
    assert all(blk["borrowed_machines"] == 0 for blk in stats)
    assert all(blk["loaned_machines"] == 0 for blk in stats)


def test_stats_rpc_and_rbstat_render_federation_block():
    from repro.broker import protocol
    from repro.broker.tools import format_stats
    from repro.cluster import ports

    cluster = Cluster(ClusterSpec.uniform(8, seed=3))
    federation = cluster.start_federation(shards=2)
    federation.wait_ready()
    federation.submit(
        "n00", ["calypso", "30", "2.0", "4"], rsl="+(adaptive)", uid="cal"
    )
    cluster.env.run(until=cluster.now + 40.0)
    replies = []

    @cluster.system_bin.register("statpoll")
    def statpoll(proc):
        conn = yield proc.connect("n00", ports.BROKER)
        conn.send(protocol.stats_request())
        reply = yield conn.recv()
        conn.close()
        replies.append(reply)
        return 0

    proc = cluster.run_command("n01", ["statpoll"], uid="op")
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    block = replies[0]["stats"]["federation"]
    assert block["enabled"]
    assert block["shard"] == 0 and block["shards"] == 2
    assert block["owned_machines"] == 4
    assert block["cross_shard_grants"] >= 1
    rendered = format_stats(replies[0]["stats"])
    assert "federation: shard=0/2" in rendered
    assert "cross_grants=" in rendered
    # A standalone broker's snapshot renders no federation block at all.
    assert "federation" not in format_stats({"federation": {"enabled": False}})
