"""Unit tests for the write-ahead journal (``repro.broker.journal``).

These exercise the journal standalone — a bare :class:`Filesystem` and a
fake clock, no cluster — covering frame parsing, write-through vs coalesced
recording, disk stalls, torn writes, compaction, and generation pruning.
Cluster-level recovery lives in ``test_journal_recovery.py``.
"""

import pytest

from repro.broker.journal import BrokerJournal, parse_frames, snapshot_state
from repro.broker.state import BrokerState
from repro.os.filesystem import Filesystem


class Clock:
    """A manually-advanced simulated clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_journal(**kwargs):
    clock = Clock()
    journal = BrokerJournal(Filesystem(), clock, **kwargs)
    return journal, clock


def wal(journal):
    return journal.fs.read(journal._wal_path(journal.generation))


# -- framing -----------------------------------------------------------------


def test_records_roundtrip_through_frames():
    journal, _ = make_journal()
    ops = [{"op": "epoch", "epoch": 1, "first_jobid": 1}, {"op": "release", "host": "n01"}]
    for op in ops:
        journal.record(op)
    payloads, torn, corrupt = parse_frames(wal(journal))
    assert torn == 0 and corrupt == 0
    assert [p for p in payloads] == [
        '{"epoch":1,"first_jobid":1,"op":"epoch"}',
        '{"host":"n01","op":"release"}',
    ]


def test_torn_tail_stops_parsing_before_the_bad_frame():
    journal, _ = make_journal()
    journal.record({"op": "release", "host": "n01"})
    journal.record({"op": "release", "host": "n02"})
    data = wal(journal)
    # Any partial cut of the final frame is a torn tail; the prefix survives.
    payloads, torn, corrupt = parse_frames(data[:-5])
    assert torn == 1 and corrupt == 0
    assert payloads == ['{"host":"n01","op":"release"}']


def test_corrupt_crc_stops_parsing():
    journal, _ = make_journal()
    journal.record({"op": "release", "host": "n01"})
    journal.record({"op": "release", "host": "n02"})
    data = wal(journal)
    # Flip one payload character of the FIRST record: its CRC no longer
    # matches, and nothing after it can be trusted either.
    pos = data.index("n01")
    bad = data[:pos] + "nXX" + data[pos + 3 :]
    payloads, torn, corrupt = parse_frames(bad)
    assert payloads == []
    assert corrupt == 1


def test_garbage_header_counts_as_corrupt():
    payloads, torn, corrupt = parse_frames("not a journal at all" * 2)
    assert payloads == [] and corrupt == 1


# -- recording, stalls, tears ------------------------------------------------


def test_structural_records_are_write_through():
    journal, _ = make_journal()
    journal.record({"op": "release", "host": "n01"})
    assert journal.pending_ops() == 0
    assert journal.flushes == 1
    assert "n01" in wal(journal)


def test_coalesced_notes_wait_for_a_flush():
    journal, clock = make_journal()
    journal.note_lease("n01", 30.0)
    journal.note_lease("n01", 45.0)  # coalesces: only the latest survives
    assert journal.pending_ops() == 1
    clock.now = 2.0
    assert journal.flush_lag(clock()) == pytest.approx(2.0)
    journal.flush()
    assert journal.pending_ops() == 0
    assert journal.flush_lag(clock()) == 0.0
    payloads, _, _ = parse_frames(wal(journal))
    assert payloads == ['{"leases":{"n01":45.0},"op":"leases"}']


def test_disk_stall_defers_flushes_until_it_passes():
    journal, clock = make_journal()
    journal.stall(10.0)
    journal.record({"op": "release", "host": "n01"})
    # Accepted but not durable: the op sits in the cache, lag builds.
    assert not journal.fs.exists(journal._wal_path(journal.generation))
    assert journal.pending_ops() == 1
    clock.now = 5.0
    assert not journal.flush()
    assert journal.flush_lag(clock()) == pytest.approx(5.0)
    clock.now = 10.5
    assert journal.flush()
    assert journal.pending_ops() == 0
    assert "n01" in wal(journal)


def test_discard_unflushed_models_process_death():
    journal, _ = make_journal()
    journal.stall(10.0)
    journal.record({"op": "release", "host": "n01"})
    journal.discard_unflushed()
    assert journal.pending_ops() == 0
    assert not journal.fs.exists(journal._wal_path(journal.generation))
    # The stall dies with the process too: the next incarnation writes.
    journal.record({"op": "release", "host": "n02"})
    assert "n02" in wal(journal)


def test_tear_truncates_the_wal_tail():
    journal, _ = make_journal()
    journal.record({"op": "release", "host": "n01"})
    before = wal(journal)
    assert journal.tear(5) == 5
    assert wal(journal) == before[:-5]
    payloads, torn, _ = parse_frames(wal(journal))
    assert payloads == [] and torn == 1
    # A tear larger than the file just empties it.
    assert journal.tear(10_000) == len(before) - 5


# -- compaction and generations ----------------------------------------------


def attach_small_state(journal):
    state = BrokerState()
    for i in range(3):
        state.add_machine(f"n{i:02d}")
    journal.attach(state, epoch=1)
    return state


def test_compaction_rolls_generations_and_prunes_old_ones():
    journal, _ = make_journal(compact_bytes=256, keep_generations=2)
    state = attach_small_state(journal)
    job = state.register_job("u", "n00", "", ["compute", "5"])
    for i in range(40):
        state.allocate("n01", job.jobid, firm=True, now=float(i), lease_expires_at=float(i) + 30.0)
        state.release("n01")
    assert journal.compactions >= 1
    generations = journal._generations()
    assert generations[-1] == journal.generation
    # Bounded disk: at most keep_generations generations survive.
    assert len(generations) <= 2
    # Each kept generation is one snapshot plus a WAL that can overshoot
    # compact_bytes by at most one flush; disk stays near that constant no
    # matter how long the op stream runs.
    snap_len = len(journal.fs.read(journal._snap_path(journal.generation)))
    assert journal.total_bytes() <= 2 * (256 + snap_len) + 512
    # The rolled journal still recovers the full durable contract.
    recovered, info = journal.load_state()
    assert info.snapshot_used
    assert snapshot_state(recovered) == snapshot_state(state)


def test_new_journal_resumes_the_highest_generation_on_disk():
    journal, clock = make_journal(compact_bytes=128)
    state = attach_small_state(journal)
    job = state.register_job("u", "n00", "", ["compute", "5"])
    for i in range(20):
        state.allocate("n02", job.jobid, firm=False, now=float(i))
        state.release("n02")
    assert journal.generation >= 1
    successor = BrokerJournal(journal.fs, clock)
    assert successor.generation == journal.generation
    recovered, _ = successor.load_state()
    assert snapshot_state(recovered) == snapshot_state(state)


def test_load_state_on_an_empty_directory_returns_none():
    journal, _ = make_journal()
    assert journal.load_state() is None


def test_stats_surface_generation_lag_and_stall():
    journal, clock = make_journal()
    journal.record({"op": "release", "host": "n01"})
    stats = journal.stats()
    assert stats["enabled"] is True
    assert stats["records"] == 1
    assert stats["flushes"] == 1
    assert stats["stalled"] is False
    journal.stall(10.0)
    journal.note_lease("n01", 60.0)
    clock.now = 3.0
    stats = journal.stats()
    assert stats["stalled"] is True
    assert stats["pending_ops"] == 1
    assert stats["flush_lag"] == pytest.approx(3.0)
