"""Journal-backed broker recovery: snapshot+replay, corruption, fallback.

PR-4's restart tests prove re-registration alone can rebuild the broker;
these prove the journalled broker recovers *from disk* — instantly, across
torn tails and corrupt records, falling back a snapshot generation when it
must — and that daemon re-registration then reconciles rather than rebuilds.
An empty journal directory degrades to exactly the PR-4 behaviour.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec
from tests.broker.conftest import install_greedy


@pytest.fixture
def jcluster4():
    """4 public machines, broker on n00, journal enabled."""
    cluster = Cluster(ClusterSpec.uniform(4))
    cluster.start_broker(journal=True)
    cluster.broker.wait_ready()
    return cluster


def _running_greedy(cluster, width=2):
    svc = cluster.broker
    install_greedy(cluster)
    handle = svc.submit("n00", ["greedy", str(width)], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 5.0)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == width
    return svc, handle, job


def _crash_restart(cluster, svc, downtime=2.0):
    svc.crash_broker()
    cluster.env.run(until=cluster.now + downtime)
    svc.restart_broker()
    svc.wait_ready()


def test_recovery_comes_from_the_journal_not_reregistration(jcluster4):
    svc, handle, job = _running_greedy(jcluster4)
    held_before = svc.holdings()[job.jobid]
    _crash_restart(jcluster4, svc)

    # State is whole the instant the new incarnation boots: holdings are
    # visible BEFORE any daemon has had a chance to re-register.
    assert svc.holdings()[job.jobid] == held_before
    assert svc.metrics.counter("recovery.from_journal").value == 1
    assert svc.metrics.counter("recovery.from_reregistration").value == 0
    assert svc.metrics.counter("recovery.replayed_records").value > 0
    assert svc.metrics.gauge("recovery.latency_seconds").value == 0.0
    events = svc.events_of("recovery")
    assert events and events[-1]["source"] == "journal"

    # ... and the picture still holds once re-registration cross-checks it.
    jcluster4.env.run(until=jcluster4.now + 15.0)
    assert svc.holdings()[job.jobid] == held_before
    assert handle.proc.is_alive
    jcluster4.assert_no_crashes()


def test_recovered_epoch_is_strictly_higher_than_the_journalled_one(jcluster4):
    svc, _, _ = _running_greedy(jcluster4)
    _crash_restart(jcluster4, svc)
    assert svc.epoch == 2
    _crash_restart(jcluster4, svc)
    assert svc.epoch == 3
    jcluster4.env.run(until=jcluster4.now + 10.0)
    jcluster4.assert_no_crashes()


def test_torn_tail_is_tolerated(jcluster4):
    svc, handle, job = _running_greedy(jcluster4)
    held_before = svc.holdings()[job.jobid]
    # A crash mid-write: the WAL's final frame is incomplete.
    assert svc.journal.tear(5) == 5
    _crash_restart(jcluster4, svc)

    assert svc.metrics.counter("recovery.from_journal").value == 1
    assert svc.metrics.counter("recovery.torn_tails").value == 1
    jcluster4.env.run(until=jcluster4.now + 15.0)
    # Whatever the torn record would have said, reconciliation against the
    # live daemons settles it: same holdings, nothing double-booked.
    assert svc.holdings()[job.jobid] == held_before
    assert handle.proc.is_alive
    jcluster4.assert_no_crashes()


def test_corrupt_record_mid_file_stops_replay_but_not_recovery(jcluster4):
    svc, handle, job = _running_greedy(jcluster4)
    held_before = svc.holdings()[job.jobid]
    journal = svc.journal
    path = journal._wal_path(journal.generation)
    data = journal.fs.read(path)
    # Flip one character inside a payload near the middle of the WAL: a
    # full-length frame with a bad CRC — everything after it is untrusted.
    pos = data.index('"op"', len(data) // 2)
    journal.fs.write(path, data[:pos] + "!xp!" + data[pos + 4 :])
    _crash_restart(jcluster4, svc)

    assert svc.metrics.counter("recovery.from_journal").value == 1
    assert svc.metrics.counter("recovery.corrupt_records").value >= 1
    jcluster4.env.run(until=jcluster4.now + 15.0)
    assert svc.holdings()[job.jobid] == held_before
    held = [h for hosts in svc.holdings().values() for h in hosts]
    assert len(held) == len(set(held))
    assert handle.proc.is_alive
    jcluster4.assert_no_crashes()


def test_corrupt_snapshot_falls_back_one_generation(jcluster4):
    svc, handle, job = _running_greedy(jcluster4)
    held_before = svc.holdings()[job.jobid]
    journal = svc.journal
    # Force a compaction so a fresh snapshot generation exists, then ruin it.
    journal.compact_bytes = 1
    journal.record({"op": "noop"})
    top = journal.generation
    assert top >= 1
    journal.fs.write(journal._snap_path(top), "garbage snapshot")
    _crash_restart(jcluster4, svc)

    # Recovery used generation top-1 and replayed forward through top's WAL.
    assert svc.metrics.counter("recovery.from_journal").value == 1
    assert svc.metrics.counter("recovery.snapshot_fallbacks").value == 1
    assert svc.holdings()[job.jobid] == held_before
    jcluster4.env.run(until=jcluster4.now + 15.0)
    assert svc.holdings()[job.jobid] == held_before
    assert handle.proc.is_alive
    jcluster4.assert_no_crashes()


def test_empty_journal_directory_degrades_to_reregistration(jcluster4):
    svc, handle, job = _running_greedy(jcluster4)
    held_before = svc.holdings()[job.jobid]
    journal = svc.journal
    prefix = journal.directory + "/"
    for path in list(journal.fs.listdir()):
        if path.startswith(prefix):
            journal.fs.unlink(path)
    _crash_restart(jcluster4, svc)

    # Nothing on disk: exactly the PR-4 path — blank state, rebuilt from
    # daemon re-registration and session resumption.
    assert svc.metrics.counter("recovery.from_journal").value == 0
    assert svc.metrics.counter("recovery.from_reregistration").value == 1
    events = svc.events_of("recovery")
    assert events and events[-1]["source"] == "reregistration"
    jcluster4.env.run(until=jcluster4.now + 15.0)
    assert svc.holdings()[job.jobid] == held_before
    assert svc.metrics.counter("sessions.resumed").value >= 1
    assert handle.proc.is_alive
    jcluster4.assert_no_crashes()


def test_daemon_death_in_the_same_fault_window_leaves_nothing_stuck(jcluster4):
    """A worker machine dies in the same window as the broker: the journal
    re-animates a lease whose daemon will never confirm it.  The re-stamped
    lease simply expires, the adaptive job replaces the machine, and no
    allocation is left pointing anywhere stale."""
    svc, handle, job = _running_greedy(jcluster4, width=2)
    victim = svc.holdings()[job.jobid][-1]
    jcluster4.crash_machine(victim, reboot_after=40.0)
    svc.crash_broker()
    jcluster4.env.run(until=jcluster4.now + 2.0)
    svc.restart_broker()
    svc.wait_ready()

    # Journal recovery resurrects the victim's allocation (recovered=True,
    # lease one TTL out); the daemon is dead, so it expires instead of being
    # confirmed.  Give it: downtime + TTL + replacement time.
    ttl = jcluster4.network.calibration.lease_ttl
    jcluster4.env.run(until=jcluster4.now + 2.5 * ttl + 10.0)

    holdings = svc.holdings()[job.jobid]
    assert len(holdings) == 2
    held = [h for hosts in svc.holdings().values() for h in hosts]
    assert len(held) == len(set(held))
    # Nothing is allocated on a machine whose daemon has not reported in.
    for host in held:
        assert svc.state.machines[host].reported
    assert handle.proc.is_alive
    assert svc.metrics.counter("recovery.from_journal").value == 1
    jcluster4.assert_no_crashes()


def test_recovery_conflicts_resolve_toward_live_inventory(jcluster4):
    """A grant that died unflushed (disk stall) is re-adopted from the
    daemon's inventory; a journalled lease whose job vanished is flagged and
    expired.  Either direction counts a ``recovery.conflict`` and the live
    periphery wins."""
    svc, handle, job = _running_greedy(jcluster4)
    # Stall the disk, then force new journal activity that will be lost.
    svc.journal.stall(30.0)
    svc.state.release(svc.holdings()[job.jobid][-1])  # journalled op, unflushed
    svc.crash_broker()
    jcluster4.env.run(until=jcluster4.now + 2.0)
    svc.restart_broker()
    svc.wait_ready()
    jcluster4.env.run(until=jcluster4.now + 20.0)

    # The journal's stale picture (machine still held) was reconciled; the
    # adaptive job is whole again and nothing is double-booked.
    assert len(svc.holdings()[job.jobid]) == 2
    held = [h for hosts in svc.holdings().values() for h in hosts]
    assert len(held) == len(set(held))
    assert handle.proc.is_alive
    jcluster4.assert_no_crashes()
