"""Lease-based grants: TTLs, heartbeat renewal, and stale-lease expiry.

Every grant carries a lease (``Allocation.lease_expires_at``).  Daemon
heartbeats renew the lease of any allocation whose jobid has a live subapp
on the machine; the broker's ``lease_sweeper`` expires allocations whose
lease stopped being renewed, so a machine stranded by lost state (e.g. a
session that died with a previous broker incarnation) becomes grantable
again instead of leaking forever.
"""

import pytest

from repro.broker.state import AllocationState
from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy


def test_every_grant_carries_a_finite_lease(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    ttl = cluster4.network.calibration.lease_ttl
    held = svc.holdings()[job.jobid]
    assert len(held) == 2
    for host in held:
        allocation = svc.state.machines[host].allocation
        assert allocation.lease_expires_at != float("inf")
        # Granted within the last 5 s, so the lease expires within one TTL.
        assert cluster4.now < allocation.lease_expires_at <= cluster4.now + ttl
    cluster4.assert_no_crashes()


def test_heartbeats_renew_leases_past_the_ttl(cluster4):
    """A healthy job keeps its machines well past the original TTL: daemon
    reports list the subapp's jobid, which pushes the lease forward."""
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    ttl = cluster4.network.calibration.lease_ttl

    cluster4.env.run(until=cluster4.now + 2.5 * ttl)
    # Nothing expired; the allocations are still there with fresh leases.
    assert svc.metrics.counter("leases.expired").value == 0
    held = svc.holdings()[job.jobid]
    assert len(held) == 2
    for host in held:
        allocation = svc.state.machines[host].allocation
        assert allocation.lease_expires_at > cluster4.now
    cluster4.assert_no_crashes()


def test_unrenewed_lease_expires_and_frees_the_machine(cluster4):
    """An allocation nobody renews (its job has no live session and no
    subapp on the host) is swept once its TTL runs out."""
    svc = cluster4.broker
    ttl = cluster4.network.calibration.lease_ttl
    # Plant an allocation for a job the broker has no session for — the
    # shape left behind when session state dies with a broker incarnation
    # and the app never resumes.
    svc.state.adopt_job(99, "ghost", "n00", "", ["ghost"])
    svc.state.allocate(
        "n02", 99, firm=False, now=cluster4.now,
        lease_expires_at=cluster4.now + 1.0,
    )
    cluster4.env.run(until=cluster4.now + 2.0 * ttl)

    assert svc.state.machines["n02"].allocation is None
    assert svc.metrics.counter("leases.expired").value == 1
    expiries = svc.events_of("lease_expired")
    assert [(e["host"], e["jobid"]) for e in expiries] == [("n02", 99)]
    cluster4.assert_no_crashes()


def test_expired_lease_machine_is_grantable_again(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    ttl = cluster4.network.calibration.lease_ttl
    svc.state.adopt_job(99, "ghost", "n00", "", ["ghost"])
    for host in ("n01", "n02", "n03"):
        svc.state.allocate(
            host, 99, firm=False, now=cluster4.now,
            lease_expires_at=cluster4.now + 1.0,
        )
    # With every machine stranded, a new job can be served only after the
    # sweeper reclaims the expired leases.
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 2.0 * ttl + 10.0)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == 2
    assert svc.metrics.counter("leases.expired").value == 3
    cluster4.assert_no_crashes()


def test_attached_holder_is_reclaimed_not_dropped(cluster4):
    """When a *live* session's allocation stops being renewed (here: an
    allocation on a host where the job has no subapp, so daemon reports
    never list it), the broker revokes through the app rather than yanking
    the machine out from under it."""
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    (held,) = svc.holdings()[job.jobid]
    spare = next(h for h in ("n01", "n02", "n03") if h != held)
    # Plant an allocation to the live job on a host it runs nothing on:
    # no subapp there means no renewal, so the lease runs out.
    svc.state.allocate(
        spare, job.jobid, firm=False, now=cluster4.now,
        lease_expires_at=cluster4.now + 1.0,
    )
    ttl = cluster4.network.calibration.lease_ttl
    cluster4.env.run(until=cluster4.now + 2.0 * ttl + 5.0)

    assert svc.metrics.counter("leases.expired").value >= 1
    # The reclaim went through the revocation path: the app answered the
    # revoke with a release ("idle" path — nothing of the job runs there).
    assert any(e["host"] == spare for e in svc.events_of("revoke"))
    assert any(e["host"] == spare for e in svc.events_of("released"))
    assert svc.state.machines[spare].allocation is None
    # The job's real machine is untouched.
    assert svc.holdings()[job.jobid] == [held]
    cluster4.assert_no_crashes()


def test_broker_death_cancels_the_armed_lease_timer(cluster4):
    """The coalesced lease sweep timer follows the same cancellation
    discipline as the liveness sweep timer: never fired into a dead
    continuation."""
    svc = cluster4.broker
    cluster4.env.run(until=cluster4.now + 5.0)
    timer = svc.control._lease_timer
    assert timer is not None and not timer.cancelled
    svc.broker_proc.signal(SIGKILL)
    assert timer.cancelled
    cluster4.env.run(until=cluster4.now + 120.0)
    assert not timer.processed


def test_renewal_is_driven_by_daemon_reports(cluster4):
    """The lease inventory really comes from the process table: a report
    listing the jobid moves ``lease_expires_at`` forward."""
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    (held,) = svc.holdings()[job.jobid]
    before = svc.state.machines[held].allocation.lease_expires_at
    interval = cluster4.network.calibration.daemon_report_interval
    cluster4.env.run(until=cluster4.now + 2.0 * interval + 0.5)
    after = svc.state.machines[held].allocation.lease_expires_at
    assert after > before
    assert svc.state.machines[held].allocation.state is AllocationState.ACTIVE
    cluster4.assert_no_crashes()
