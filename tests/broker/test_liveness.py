"""Liveness detection: silent machines are declared dead and reclaimed.

The broker's heartbeat-deadline sweeper (``liveness_sweeper``) is the
detection half of the fault-tolerance story: a machine that stops
reporting for longer than ``calibration.liveness_deadline`` is marked
dead, its allocation is reclaimed through the ordinary revocation path,
and the adaptive job reacquires a replacement elsewhere.  A rebooted
machine rejoins once its daemon reports again.
"""

import pytest

from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy


def _rbdaemons(cluster, host):
    return [
        p
        for p in cluster.machine(host).procs.values()
        if p.argv and p.argv[0] == "rbdaemon"
    ]


def test_crash_marks_machine_dead_and_job_reacquires(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    held = svc.holdings()[job.jobid]
    assert len(held) == 2

    victim = held[0]
    cluster4.crash_machine(victim, reboot_after=None)
    cluster4.env.run(until=cluster4.now + 15.0)

    dead_events = svc.events_of("machine_dead")
    assert [e["host"] for e in dead_events] == [victim]
    assert svc.metrics.counter("broker.machines_marked_dead").value == 1
    assert svc.state.machines[victim].dead

    # The allocation was reclaimed (not leaked) and the greedy master
    # re-acquired a replacement on one of the surviving machines.
    held_after = svc.holdings()[job.jobid]
    assert victim not in held_after
    assert len(held_after) == 2
    cluster4.assert_no_crashes()


def test_rebooted_machine_rejoins_and_is_grantable(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)

    cluster4.crash_machine("n02", reboot_after=10.0)
    cluster4.env.run(until=cluster4.now + 9.0)
    assert svc.state.machines["n02"].dead

    cluster4.env.run(until=cluster4.now + 20.0)
    rejoins = svc.events_of("machine_rejoin")
    assert [e["host"] for e in rejoins] == ["n02"]
    assert svc.metrics.counter("broker.machine_rejoins").value == 1
    assert not svc.state.machines["n02"].dead

    # A greedy master wanting every remote machine pulls the rejoined host
    # back into service: the cluster has only three remote machines, so a
    # full complement must include n02 again.
    cluster4.env.run(until=cluster4.now + 10.0)
    held = [h for hosts in svc.holdings().values() for h in hosts]
    assert "n02" in held
    cluster4.assert_no_crashes()


def test_daemon_kill_is_not_a_false_positive(cluster4):
    """A killed daemon respawns within one report interval — well inside the
    liveness deadline — so the machine must never be declared dead."""
    svc = cluster4.broker
    daemons = _rbdaemons(cluster4, "n01")
    assert daemons
    daemons[0].signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 20.0)

    assert svc.events_of("machine_dead") == []
    assert svc.metrics.counter("broker.machines_marked_dead").value == 0
    assert svc.metrics.counter("broker.daemon_restarts").value >= 1
    assert not svc.state.machines["n01"].dead
    cluster4.assert_no_crashes()


def test_dead_machine_is_not_granted(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    cluster4.crash_machine("n03", reboot_after=None)
    cluster4.env.run(until=cluster4.now + 12.0)
    assert svc.state.machines["n03"].dead

    handle = svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 15.0)
    job = handle.job_record()
    held = svc.holdings().get(job.jobid, [])
    assert "n03" not in held
    # Only two live remote machines exist; the third slot stays unfilled.
    assert sorted(held) == ["n01", "n02"]
    cluster4.assert_no_crashes()


def test_crash_racing_a_grant_neither_leaks_nor_double_grants(cluster4):
    """Satellite: the machine dies between ``_grant`` and the app's use of it.

    The broker records an ACTIVE allocation the moment it grants; if the
    machine crashes before the app's subapp ever connects, nothing will
    release the host on its own.  The liveness sweeper must reclaim it via
    the revoke → app "idle" release path, and the host must not be granted
    to anyone else while it is dead.
    """
    svc = cluster4.broker
    install_greedy(cluster4)
    env = cluster4.env
    handle = svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)")
    crashed = {}

    def saboteur(proc):
        # Crash the granted host the instant the grant is logged — before
        # the app's rsh chain can reach the machine's rshd.
        while not svc.events_of("grant"):
            yield proc.sleep(0.001)
        host = svc.events_of("grant")[0]["host"]
        cluster4.machine(host).crash()
        crashed["host"] = host
        crashed["at"] = env.now

    env.process(saboteur(_FakeProc(env)), name="saboteur")
    env.run(until=env.now + 25.0)

    victim = crashed["host"]
    grant_t = svc.events_of("grant")[0]["time"]
    assert crashed["at"] == pytest.approx(grant_t, abs=0.01)

    # Detection fired and the allocation came back: no leak.
    assert victim in [e["host"] for e in svc.events_of("machine_dead")]
    assert svc.state.machines[victim].allocation is None

    # No double-grant: the dead host was granted exactly once, and the job
    # now holds a different, live machine.
    grants_to_victim = [
        e for e in svc.events_of("grant") if e["host"] == victim
    ]
    assert len(grants_to_victim) == 1
    job = handle.job_record()
    held = svc.holdings()[job.jobid]
    assert len(held) == 1 and victim not in held
    cluster4.assert_no_crashes()


class _FakeProc:
    """Minimal sleep-only stand-in so test helpers read like program bodies."""

    def __init__(self, env):
        self.env = env

    def sleep(self, seconds):
        return self.env.timeout(seconds)


def test_broker_death_cancels_the_armed_sweep_timer(cluster4):
    """The coalesced liveness sweep timer is cancelled — never fired into a
    dead continuation — when the broker goes down mid-wait."""
    svc = cluster4.broker
    cluster4.env.run(until=cluster4.now + 5.0)  # daemons reporting; sweep armed
    timer = svc.control._sweep_timer
    assert timer is not None and not timer.cancelled
    svc.broker_proc.signal(SIGKILL)
    assert timer.cancelled  # the sweeper's finally ran on the way out
    cluster4.env.run(until=cluster4.now + 120.0)  # well past the deadline
    assert not timer.processed  # lazy deletion discarded it: no callbacks ran


def test_sweeper_holds_at_most_one_live_timer(cluster4):
    """Re-arming never accumulates wake-ups: every superseded sweep timer is
    either fired (and re-armed) or cancelled by the time a new one is armed."""
    svc = cluster4.broker
    seen = []
    deadline = cluster4.now + 60.0
    while cluster4.now < deadline:
        cluster4.env.step()
        timer = svc.control._sweep_timer
        if timer is not None and (not seen or seen[-1] is not timer):
            seen.append(timer)
    assert len(seen) > 1  # the sweeper really did re-arm over this window
    current = svc.control._sweep_timer
    for timer in seen:
        if timer is current:
            continue
        assert timer.processed or timer.cancelled
