"""Integration tests: the external-module mechanism end to end."""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec


@pytest.fixture
def mixed():
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="p00", private_owner="ann"),
        ]
    )
    cluster = Cluster(spec)
    cluster.start_broker()
    cluster.broker.wait_ready()
    return cluster


def slave_pvmds(cluster):
    return [
        p
        for m in cluster.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "pvmd" and "-slave" in p.argv
    ]


def test_pvm_grows_to_private_machine_then_shrinks_on_owner_return(mixed):
    svc = mixed.broker
    job = svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    mixed.env.run(until=mixed.now + 3.0)

    # Ask for two broker-chosen machines (the console tolerates the phase-I
    # failures; phase II adds both asynchronously).
    add = mixed.run_command(
        "n00", ["pvm", "add", "anylinux", "anylinux"], uid="pat"
    )
    mixed.env.run(until=add.terminated)
    mixed.env.run(until=mixed.now + 15.0)

    record = job.job_record()
    holdings = svc.holdings()[record.jobid]
    assert set(holdings) == {"n01", "p00"}
    assert {p.machine.name for p in slave_pvmds(mixed)} == {"n01", "p00"}

    # Ann returns to her machine: the broker must take p00 back through the
    # job's own shrink module (a graceful PVM delete, not a kill).
    mixed.machine("p00").console_active = True
    mixed.env.run(until=mixed.now + 20.0)

    assert svc.holdings()[record.jobid] == ["n01"]
    assert {p.machine.name for p in slave_pvmds(mixed)} == {"n01"}
    # The slave exited voluntarily (exit code 0 via console delete), so the
    # machine release was graceful: no SIGKILL involved.
    reclaims = svc.events_of("owner_reclaim")
    assert reclaims and reclaims[0]["host"] == "p00"
    mixed.assert_no_crashes()


def test_module_grow_failure_releases_machine(mixed):
    """If the job never consumes a granted machine, the app returns it."""
    svc = mixed.broker
    # A module job whose module scripts exist but whose runtime will treat
    # the add as a no-op: boot PVM, pre-add n01 explicitly, then request
    # anylinux while n01 is the only public candidate.
    job = svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    mixed.env.run(until=mixed.now + 3.0)
    add = mixed.run_command("n00", ["pvm", "add", "n01"], uid="pat")
    mixed.env.run(until=add.terminated)
    assert add.exit_code == 0

    # Now ask for a broker-chosen machine; the broker picks p00 (n01 is
    # running a pvmd but is unallocated and idle-looking... whichever it
    # picks, if it picks n01 the console says "already" and the app must
    # release the grant rather than leak it).
    add2 = mixed.run_command("n00", ["pvm", "add", "anylinux"], uid="pat")
    mixed.env.run(until=add2.terminated)
    mixed.env.run(until=mixed.now + 15.0)
    record = job.job_record()
    holdings = svc.holdings().get(record.jobid, [])
    slaves = {p.machine.name for p in slave_pvmds(mixed)}
    # Invariant: every held machine actually runs a slave pvmd.
    assert set(holdings) <= slaves
    mixed.assert_no_crashes()
