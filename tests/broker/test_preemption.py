"""Integration tests: just-in-time *re*allocation (preemption, owner return,
even partition) — the behaviours behind Table 2, Figure 7 and the policy."""

import pytest

from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy


def grow_greedy(cluster, k, uid="user"):
    svc = cluster.broker
    install_greedy(cluster)
    handle = svc.submit("n00", ["greedy", str(k)], rsl="+(adaptive)", uid=uid)
    cluster.env.run(until=cluster.now + 6.0)
    return handle


def test_firm_job_preempts_elastic_holder(cluster4):
    svc = cluster4.broker
    # The adaptive job soaks every machine except its own home host (n00).
    greedy = grow_greedy(cluster4, 4)
    gjob = greedy.job_record()
    assert len(svc.holdings()[gjob.jobid]) == 3

    t0 = cluster4.now
    seq = svc.submit("n00", ["rsh", "anylinux", "null"])
    assert seq.wait() == 0
    elapsed = cluster4.now - t0
    # Paper Table 2: a reallocation completes in ~1 s, so the whole
    # submission lands near 1.3 s.
    assert 0.9 <= elapsed <= 2.0
    revokes = svc.events_of("revoke")
    assert len(revokes) == 1
    assert revokes[0]["victim"] == gjob.jobid
    cluster4.assert_no_crashes()


def test_adaptive_job_reacquires_after_preemption(cluster4):
    svc = cluster4.broker
    greedy = grow_greedy(cluster4, 4)
    gjob = greedy.job_record()

    seq = svc.submit("n00", ["rsh", "anylinux", "null"])
    seq.wait()
    # After the sequential job finishes, the adaptive job's queued request
    # gets the machine back.
    cluster4.env.run(until=cluster4.now + 5.0)
    assert len(svc.holdings()[gjob.jobid]) == 3
    # The re-grant came from the queue, not a new submission.
    grants = [e for e in svc.events_of("grant") if e["jobid"] == gjob.jobid]
    assert len(grants) == 4  # 3 initial + 1 re-acquisition


def test_elastic_never_preempts_firm(cluster4):
    svc = cluster4.broker

    @cluster4.system_bin.register("hold")
    def hold(proc):
        yield proc.sleep(3600.0)

    # Rigid jobs (submitted from n03 so n00..n02 are all eligible) occupy
    # every machine the adaptive job could get.
    rigid = [
        svc.submit("n03", ["rsh", "anylinux", "hold"]) for _ in range(3)
    ]
    cluster4.env.run(until=cluster4.now + 4.0)
    assert sum(len(h) for h in svc.holdings().values()) == 3

    greedy = grow_greedy(cluster4, 2)  # submitted from n00; n03 is free but
    gjob = greedy.job_record()         # only n03's *home jobs* hold the rest
    holdings = svc.holdings().get(gjob.jobid, [])
    assert holdings == ["n03"]  # the one idle machine; nothing was stolen
    assert svc.events_of("revoke") == []


def test_even_partition_between_two_elastic_jobs(cluster4):
    svc = cluster4.broker
    first = grow_greedy(cluster4, 4, uid="alice")
    fjob = first.job_record()
    assert len(svc.holdings()[fjob.jobid]) == 3  # n01..n03 (home n00 excluded)

    install_greedy(cluster4)
    second = svc.submit(
        "n01", ["greedy", "4"], rsl="+(adaptive)", uid="bob"
    )
    cluster4.env.run(until=cluster4.now + 30.0)
    sjob = second.job_record()
    holdings = svc.holdings()
    # Paper: "ResourceBroker tries to evenly partition machines among jobs."
    # Second job takes the idle n00, then steals exactly one machine to even
    # the split at 2/2.
    assert len(holdings[fjob.jobid]) == 2
    assert len(holdings[sjob.jobid]) == 2
    cluster4.assert_no_crashes()


def test_owner_return_reclaims_private_machine(mixed_cluster):
    svc = mixed_cluster.broker
    greedy = grow_greedy(mixed_cluster, 4)
    gjob = greedy.job_record()
    holdings = svc.holdings()[gjob.jobid]
    assert set(holdings) >= {"p00", "p01"}  # adaptive job got private machines

    # Ann sits down at her machine.
    mixed_cluster.machine("p00").console_active = True
    mixed_cluster.machine("p00").logged_in.add("ann")
    mixed_cluster.env.run(until=mixed_cluster.now + 6.0)

    holdings = svc.holdings()[gjob.jobid]
    assert "p00" not in holdings
    reclaims = svc.events_of("owner_reclaim")
    assert reclaims and reclaims[0]["host"] == "p00"
    # While Ann is active the machine is not re-allocated to anyone.
    assert svc.state.machine("p00").allocation is None


def test_private_machines_denied_to_non_adaptive_jobs(mixed_cluster):
    svc = mixed_cluster.broker

    @mixed_cluster.system_bin.register("hold")
    def hold(proc):
        yield proc.sleep(3600.0)

    # Occupy the two public machines with rigid jobs (from different homes
    # so both n00 and n01 are eligible targets).
    svc.submit("n00", ["rsh", "anylinux", "hold"])
    svc.submit("n01", ["rsh", "anylinux", "hold"])
    mixed_cluster.env.run(until=mixed_cluster.now + 4.0)
    assert sum(len(h) for h in svc.holdings().values()) == 2
    # A third rigid job must wait even though p00/p01 are idle.
    svc.submit("n00", ["rsh", "anylinux", "hold"])
    mixed_cluster.env.run(until=mixed_cluster.now + 5.0)
    for host in ("p00", "p01"):
        assert svc.state.machine(host).allocation is None
    assert len(svc.state.pending) == 1


def test_symbolic_platform_constraint_respected(cluster4):
    """anysolaris can never match the all-Linux cluster: the request is
    denied outright and the job's rsh fails like a bad host name would."""
    svc = cluster4.broker
    handle = svc.submit("n00", ["rsh", "anysolaris", "null"])
    assert handle.wait() == 1
    assert svc.events_of("grant") == []
    assert len(svc.events_of("denied")) == 1
    assert svc.state.pending == []


def test_daemon_restarted_after_death(cluster4):
    svc = cluster4.broker
    daemons = [
        p
        for p in cluster4.machine("n02").procs.values()
        if p.argv[0] == "rbdaemon"
    ]
    assert len(daemons) == 1
    daemons[0].signal(SIGKILL)
    cluster4.env.run(until=cluster4.now + 10.0)
    # The broker noticed the EOF and respawned the daemon (paper §3:
    # "restarts them if they fail").
    restarts = svc.events_of("daemon_restart")
    assert restarts and restarts[0]["host"] == "n02"
    daemons = [
        p
        for p in cluster4.machine("n02").procs.values()
        if p.argv[0] == "rbdaemon"
    ]
    assert len(daemons) == 1
    cluster4.assert_no_crashes()


def test_broker_runs_unprivileged(cluster4):
    assert cluster4.broker.broker_proc.uid == "rbroker"
    daemons = [
        p
        for m in cluster4.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "rbdaemon"
    ]
    assert daemons and all(d.uid == "rbroker" for d in daemons)


def test_revocations_serialize_per_victim(cluster4):
    """k simultaneous preemptions of one adaptive job take ~k * 1 s (the
    linearity of Figure 7)."""
    svc = cluster4.broker
    greedy = grow_greedy(cluster4, 4)

    @cluster4.system_bin.register("hold")
    def hold(proc):
        yield proc.sleep(3600.0)

    t0 = cluster4.now
    for _ in range(3):
        svc.submit("n00", ["rsh", "anylinux", "hold"])
    grant_times = []
    deadline = cluster4.now + 60.0
    while len(grant_times) < 3 and cluster4.now < deadline:
        cluster4.env.run(until=cluster4.now + 0.5)
        grant_times = [
            e["time"] - t0
            for e in svc.events_of("grant")
            if e["time"] >= t0
        ]
    grant_times.sort()
    assert len(grant_times) == 3
    gaps = [
        b - a for a, b in zip(grant_times, grant_times[1:])
    ]
    # Roughly one revocation-time apart (serialized), not simultaneous.
    assert all(0.3 <= g <= 2.5 for g in gaps), (grant_times, gaps)
