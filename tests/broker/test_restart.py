"""Broker crash recovery: restart, re-registration, and session resumption.

The broker process dies (SIGKILL, no cleanup) and a fresh incarnation boots
with *blank* state.  Recovery is driven entirely by the peers: daemons
re-register with their lease inventories (re-adopting allocations), apps
resume their sessions by (jobid, epoch) (re-claiming holdings and
resubmitting unanswered requests), and the control tools fail fast while
the broker is down instead of silently dropping messages.
"""

import pytest

from repro.broker.service import BrokerLost, BrokerUnavailable
from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy


def _all_held_hosts(svc):
    return [h for hosts in svc.holdings().values() for h in hosts]


def test_session_resumes_with_holdings_after_restart(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    held_before = svc.holdings()[job.jobid]
    assert len(held_before) == 2

    svc.crash_broker()
    cluster4.env.run(until=cluster4.now + 2.0)
    svc.restart_broker()
    svc.wait_ready()
    cluster4.env.run(until=cluster4.now + 15.0)

    assert svc.epoch == 2
    # The job kept running and the new incarnation re-learned its holdings —
    # same machines, no re-execution, no double-grant.
    assert svc.holdings()[job.jobid] == held_before
    assert handle.proc.is_alive
    held = _all_held_hosts(svc)
    assert len(held) == len(set(held))
    assert svc.metrics.counter("sessions.resumed").value >= 1
    assert svc.metrics.counter("leases.adopted").value >= 1
    assert svc.metrics.counter("broker.daemon_reregistrations").value >= 4
    assert svc.events_of("session_resumed")
    cluster4.assert_no_crashes()


def test_restart_mid_request_resubmits_and_grants_once(cluster4):
    """The broker dies with the job's machine requests still queued: the
    resumed session resubmits them and each is granted exactly once."""
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    # Crash almost immediately: registration done, grants likely not.
    cluster4.env.run(until=cluster4.now + 1.0)
    svc.crash_broker()
    cluster4.env.run(until=cluster4.now + 2.0)
    svc.restart_broker()
    svc.wait_ready()
    cluster4.env.run(until=cluster4.now + 25.0)

    job = handle.job_record()
    assert job is not None
    held = svc.holdings().get(job.jobid, [])
    assert len(held) == 2
    all_held = _all_held_hosts(svc)
    assert len(all_held) == len(set(all_held))
    cluster4.assert_no_crashes()


def test_adaptive_job_survives_two_broker_crashes(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()

    for expected_epoch in (2, 3):
        svc.crash_broker()
        cluster4.env.run(until=cluster4.now + 2.0)
        svc.restart_broker()
        svc.wait_ready()
        cluster4.env.run(until=cluster4.now + 15.0)
        assert svc.epoch == expected_epoch
        assert len(svc.holdings()[job.jobid]) == 2
    assert handle.proc.is_alive
    cluster4.assert_no_crashes()


def test_new_submissions_after_restart_get_fresh_jobids(cluster4):
    """The restarted incarnation's jobid counter starts past every id the
    dead one could have issued: a resumed job and a new submission never
    collide."""
    svc = cluster4.broker
    install_greedy(cluster4)
    first = svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    old_jobid = first.job_record().jobid

    svc.crash_broker()
    svc.restart_broker()
    svc.wait_ready()
    second = svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)", uid="eve")
    cluster4.env.run(until=cluster4.now + 15.0)

    new_jobid = second.job_record().jobid
    assert new_jobid != old_jobid
    assert first.job_record().jobid == old_jobid  # resumed under its old id
    held = _all_held_hosts(svc)
    assert len(held) == len(set(held)) == 2
    cluster4.assert_no_crashes()


def test_halt_and_rbstat_fail_fast_while_broker_down(cluster4):
    svc = cluster4.broker
    svc.crash_broker()
    with pytest.raises(BrokerUnavailable):
        svc.halt_job(1)
    with pytest.raises(BrokerUnavailable):
        svc.run_rbstat()


def test_rbstat_run_by_hand_writes_error_file(cluster4):
    """A user invoking rbstat directly (no service harness guard) still
    fails fast, with a clear error in the report file."""
    svc = cluster4.broker
    svc.crash_broker()
    proc = cluster4.run_command(
        "n01",
        ["rbstat"],
        uid="bob",
        environ={"RB_BROKER_HOST": svc.broker_host},
    )
    cluster4.env.run(until=proc.terminated)
    assert proc.exit_code == 1
    report = cluster4.machine("n01").fs.read("/home/bob/.rbstat")
    assert report == "error: broker unreachable\n"


def test_wait_deadline_raises_broker_lost(cluster4):
    svc = cluster4.broker

    @cluster4.system_bin.register("longhaul")
    def longhaul(proc):
        yield proc.sleep(3600.0)

    handle = svc.submit("n00", ["longhaul"])
    cluster4.env.run(until=cluster4.now + 2.0)
    svc.crash_broker()
    with pytest.raises(BrokerLost):
        handle.wait(deadline=5.0)
    assert handle.status == "broker_lost"
    assert handle.proc.is_alive  # the job itself is fine, just unmanaged


def test_wait_deadline_on_slow_job_returns_none(cluster4):
    svc = cluster4.broker

    @cluster4.system_bin.register("longhaul")
    def longhaul(proc):
        yield proc.sleep(3600.0)

    handle = svc.submit("n00", ["longhaul"])
    assert handle.wait(deadline=5.0) is None  # merely slow, broker healthy
    assert handle.status == "running"


def test_wedged_grow_script_falls_back_to_deny(cluster4):
    """A module grow script that hangs is killed at the deadline, retried,
    and finally treated as a denial: the granted machine goes back to the
    broker instead of leaking in pending_add forever."""
    svc = cluster4.broker
    bin_ = cluster4.system_bin

    @bin_.register("stuckvm_coord")
    def stuckvm_coord(proc):
        yield proc.sleep(3600.0)

    @bin_.register("stuckvm_grow")
    def stuckvm_grow(proc):
        yield proc.sleep(100000.0)  # wedged forever

    @bin_.register("stuckvm_halt")
    def stuckvm_halt(proc):
        yield proc.sleep(0)
        return 0

    cal = cluster4.network.calibration
    svc.submit(
        "n00",
        ["stuckvm_coord"],
        rsl='+(count>=2)(module="stuckvm")',
        uid="dev",
    )
    budget = (
        10.0
        + (cal.module_script_retries + 1) * cal.module_script_deadline
        + 10.0
    )
    cluster4.env.run(until=cluster4.now + budget)

    timeouts = svc.metrics.counter("app.module_script_timeouts").value
    assert timeouts == cal.module_script_retries + 1
    # The grant was given back: nothing stays allocated to the wedged job.
    assert svc.holdings() == {}
    assert svc.events_of("released")
    cluster4.assert_no_crashes()


def test_wedged_grow_recovers_on_retry(cluster4):
    """The first attempt hangs, the retry completes: one timeout counted,
    and the machine is handled by the normal grow bookkeeping."""
    svc = cluster4.broker
    bin_ = cluster4.system_bin

    @bin_.register("flakyvm_coord")
    def flakyvm_coord(proc):
        yield proc.sleep(3600.0)

    @bin_.register("flakyvm_grow")
    def flakyvm_grow(proc):
        if proc.file_exists("~/.flakyvm_tried"):
            yield proc.sleep(0.1)
            return 0
        proc.write_file("~/.flakyvm_tried", "1\n")
        yield proc.sleep(100000.0)

    @bin_.register("flakyvm_halt")
    def flakyvm_halt(proc):
        yield proc.sleep(0)
        return 0

    cal = cluster4.network.calibration
    svc.submit(
        "n00",
        ["flakyvm_coord"],
        rsl='+(count>=2)(module="flakyvm")',
        uid="dev",
    )
    cluster4.env.run(
        until=cluster4.now + cal.module_script_deadline + 20.0
    )
    assert svc.metrics.counter("app.module_script_timeouts").value == 1
    cluster4.assert_no_crashes()
