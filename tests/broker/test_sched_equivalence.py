"""The indexed scheduler is an optimisation, never a policy change.

Every test here runs the same seeded scenario under both scheduler modes
(``indexed`` — dirty-driven over incremental indexes, the default — and
``fullscan`` — the original scan-everything reference loop) and demands
byte-identical *decisions*: the broker event log (grants, revocations,
denials, releases, with timestamps) and the exported span trace may not
differ in a single byte.  Only the *cost* counters (machine records
scanned, scheduler passes) are allowed to diverge — that divergence is the
optimisation.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec

MODES = ("indexed", "fullscan")


def _timeline(svc) -> str:
    """The broker event log, canonically serialized."""
    return json.dumps(svc.events, sort_keys=True, default=str)


def _trace_digest(cluster) -> str:
    from repro.obs import TraceCollector

    collector = TraceCollector()
    collector.add_cluster(cluster, label="run")
    return hashlib.sha256(collector.jsonl().encode()).hexdigest()


def _churn_run(mode: str, machines: int, seed: int, sim_seconds: float):
    """The scale benchmarks' churn cell: one greedy adaptive job plus a
    stream of firm sequential arrivals forcing preemptions."""
    from repro.workloads import install_churn

    cluster = Cluster(ClusterSpec.uniform(machines, seed=seed))
    svc = cluster.start_broker(scheduler_mode=mode)
    svc.wait_ready()
    install_churn(cluster.system_bin)
    svc.submit("n00", ["greedy", str(machines - 1)], rsl="+(adaptive)")
    cluster.env.run(until=cluster.now + 5.0)

    def arrivals():
        while True:
            yield cluster.env.timeout(25.0)
            svc.submit("n00", ["rsh", "anylinux", "compute", "8"], uid="s")

    cluster.env.process(arrivals())
    cluster.env.run(until=cluster.now + sim_seconds)
    cluster.assert_no_crashes()
    return cluster, svc


@pytest.mark.parametrize("seed", (1, 2))
def test_churn_decision_timeline_identical(seed):
    runs = {m: _churn_run(m, machines=12, seed=seed, sim_seconds=150.0) for m in MODES}
    (c_idx, s_idx), (c_full, s_full) = runs["indexed"], runs["fullscan"]

    assert s_idx.events_of("grant"), "scenario must actually exercise grants"
    assert s_idx.events_of("revoke"), "scenario must actually exercise preemption"
    assert _timeline(s_idx) == _timeline(s_full)
    # Stronger than log equality: the whole simulations marched in lockstep.
    assert c_idx.env.heap_stats() == c_full.env.heap_stats()
    assert _trace_digest(c_idx) == _trace_digest(c_full)
    # The divergence that IS allowed (and is the point): the indexed
    # scheduler examined far fewer machine records to reach the same calls.
    assert s_idx.state.machines_scanned < s_full.state.machines_scanned


def test_owner_reclaim_and_denial_timeline_identical():
    """Private-machine reclaim (console login mid-run) and an unsatisfiable
    request (denial path) decide identically under both schedulers."""
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="p00", private_owner="ann"),
            MachineSpec(name="p01", private_owner="bob"),
        ]
    )
    results = {}
    for mode in MODES:
        cluster = Cluster(spec)
        svc = cluster.start_broker(scheduler_mode=mode)
        svc.wait_ready()
        from repro.workloads import install_churn

        install_churn(cluster.system_bin)
        svc.submit("n00", ["greedy", "4"], rsl="+(adaptive)", uid="alice")
        cluster.env.run(until=cluster.now + 8.0)
        # Ann sits down at her machine: owner-priority reclaim.
        cluster.machine("p00").console_active = True
        cluster.machine("p00").logged_in.add("ann")
        cluster.env.run(until=cluster.now + 8.0)
        # An unsatisfiable constraint: denied outright, in both modes.
        denied = svc.submit("n00", ["rsh", "anysolaris", "null"], uid="s")
        assert denied.wait() == 1
        cluster.env.run(until=cluster.now + 5.0)
        cluster.assert_no_crashes()
        assert svc.events_of("owner_reclaim")
        assert svc.events_of("denied")
        results[mode] = (_timeline(svc), _trace_digest(cluster))
    assert results["indexed"] == results["fullscan"]


def test_chaos_trace_identical(monkeypatch):
    """The full robustness capstone — machine crashes, partition, daemon
    kill, broker SIGKILL + restart — replays byte-identically across
    scheduler modes (the restarted incarnation keeps its mode)."""
    from repro.experiments import run_chaos
    from repro.obs import TraceCollector

    results = {}
    for mode in MODES:
        monkeypatch.setenv("RB_SCHED_MODE", mode)
        collector = TraceCollector()
        table = run_chaos(seed=1, broker_crashes=1, trace=collector)
        digest = hashlib.sha256(collector.jsonl().encode()).hexdigest()
        results[mode] = (str(table), digest)
        assert table.meta["completed"] == table.meta["jobs"]
    assert results["indexed"] == results["fullscan"]
