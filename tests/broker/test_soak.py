"""Soak tests: sustained mixed workloads and machine crashes.

These run longer simulated spans with many concurrent jobs and check the
*global* invariants rather than single behaviours: no process crashes, no
double-booked machines, allocations only for live jobs, and the adaptive
jobs end up sharing whatever is left.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec
from repro.os.signals import SIGKILL
from tests.broker.conftest import install_greedy


def _holdings_invariants(svc):
    hosts_seen = []
    for record in svc.state.machines.values():
        allocation = record.allocation
        if allocation is None:
            continue
        hosts_seen.append(record.host)
        job = svc.state.jobs.get(allocation.jobid)
        assert job is not None, f"allocation for unknown job on {record.host}"
        assert not job.done, f"allocation for finished job on {record.host}"
    assert len(hosts_seen) == len(set(hosts_seen))


def test_mixed_workload_soak():
    cluster = Cluster(ClusterSpec.uniform(8, seed=13))
    svc = cluster.start_broker()
    svc.wait_ready()
    install_greedy(cluster)

    # Two adaptive jobs competing for the cluster.
    svc.submit("n00", ["greedy", "6"], rsl="+(adaptive)", uid="a")
    svc.submit("n01", ["greedy", "6"], rsl="+(adaptive)", uid="b")
    cluster.env.run(until=cluster.now + 10.0)

    # A stream of 20 rigid jobs with varying durations.
    rng = cluster.env.rng.stream("soak")
    handles = []
    for i in range(20):
        dur = float(rng.uniform(2.0, 20.0))
        handles.append(
            svc.submit(
                "n02",
                ["rsh", "anylinux", "compute", f"{dur:.2f}"],
                uid=f"seq{i}",
            )
        )
        cluster.env.run(until=cluster.now + float(rng.uniform(1.0, 8.0)))
        _holdings_invariants(svc)

    cluster.env.run(
        until=cluster.env.all_of([h.proc.terminated for h in handles])
    )
    assert all(h.exit_code == 0 for h in handles)
    cluster.env.run(until=cluster.now + 15.0)
    _holdings_invariants(svc)

    # With the rigid stream drained, the two adaptive jobs share the
    # available machines roughly evenly.
    holdings = svc.holdings()
    adaptive_counts = sorted(len(v) for v in holdings.values())
    assert sum(adaptive_counts) >= 6
    assert max(adaptive_counts) - min(adaptive_counts) <= 1
    cluster.assert_no_crashes()


def test_machine_crash_recovery():
    cluster = Cluster(ClusterSpec.uniform(5, seed=17))
    svc = cluster.start_broker()
    svc.wait_ready()
    install_greedy(cluster)
    handle = svc.submit("n00", ["greedy", "4"], rsl="+(adaptive)", uid="a")
    cluster.env.run(until=cluster.now + 6.0)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == 4

    cluster.crash_machine("n02", reboot_after=4.0)
    cluster.env.run(until=cluster.now + 30.0)

    # The worker on n02 died with the machine; the adaptive job replaced it
    # (possibly on the rebooted n02 itself), the broker's daemon keeper
    # restarted monitoring, and nothing is double-booked.
    assert len(svc.holdings()[job.jobid]) == 4
    daemons = [
        p
        for p in cluster.machine("n02").procs.values()
        if p.argv[0] == "rbdaemon"
    ]
    assert len(daemons) == 1
    _holdings_invariants(svc)
    cluster.assert_no_crashes()


def test_crash_during_revocation_does_not_wedge_the_queue():
    """The machine being revoked dies mid-revocation: the pending firm
    request must still eventually be satisfied elsewhere."""
    cluster = Cluster(ClusterSpec.uniform(4, seed=19))
    svc = cluster.start_broker()
    svc.wait_ready()
    install_greedy(cluster)
    handle = svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)", uid="a")
    cluster.env.run(until=cluster.now + 6.0)
    job = handle.job_record()

    seq = svc.submit("n00", ["rsh", "anylinux", "null"])
    # Find which machine the broker chose to reclaim and crash it mid-
    # revocation (the graceful worker shutdown takes ~1 s, so waiting for
    # the revoke event still lands us inside the window).
    deadline = cluster.now + 5.0
    while not svc.events_of("revoke") and cluster.now < deadline:
        cluster.env.run(until=cluster.now + 0.05)
    revokes = svc.events_of("revoke")
    assert revokes
    cluster.crash_machine(revokes[-1]["host"], reboot_after=3.0)

    code = seq.wait()
    assert code == 0
    cluster.env.run(until=cluster.now + 20.0)
    _holdings_invariants(svc)
    cluster.assert_no_crashes()
