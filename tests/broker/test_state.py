"""Unit tests for the broker's bookkeeping (BrokerState)."""

import pytest

from repro.broker.state import AllocationState, BrokerState, PendingRequest


@pytest.fixture
def state():
    s = BrokerState()
    for i in range(3):
        record = s.add_machine(f"h{i}")
        record.update(
            {
                "platform": "i686linux",
                "kind": "public",
                "owner": None,
                "console_active": False,
                "cpu_load": 0,
                "n_processes": 1,
                "time": 1.0,
            }
        )
    return s


def _request(state, jobid, symbolic="anylinux", firm=True, at=0.0, reqid=1):
    request = PendingRequest(
        reqid=reqid, jobid=jobid, symbolic=symbolic, firm=firm, arrived_at=at
    )
    state.pending.append(request)
    return request


def test_register_job_assigns_increasing_ids(state):
    a = state.register_job("u", "h9", "", ["x"])
    b = state.register_job("u", "h9", "", ["y"])
    assert b.jobid == a.jobid + 1


def test_adaptive_from_rsl_or_hint(state):
    assert state.register_job("u", "h9", "+(adaptive)", ["x"]).adaptive
    assert state.register_job("u", "h9", '+(module="pvm")', ["x"]).adaptive
    assert state.register_job("u", "h9", "", ["x"], adaptive_hint=True).adaptive
    assert not state.register_job("u", "h9", "", ["x"]).adaptive


def test_allocate_and_release(state):
    job = state.register_job("u", "h9", "", ["x"])
    allocation = state.allocate("h0", job.jobid, firm=True, now=5.0)
    assert allocation.state is AllocationState.ACTIVE
    assert state.holding_count(job.jobid) == 1
    assert state.machine("h0").allocated
    released = state.release("h0")
    assert released is allocation
    assert state.holding_count(job.jobid) == 0


def test_double_allocate_rejected(state):
    job = state.register_job("u", "h9", "", ["x"])
    state.allocate("h0", job.jobid, firm=True, now=0.0)
    with pytest.raises(RuntimeError):
        state.allocate("h0", job.jobid, firm=True, now=0.0)


def test_eligible_excludes_unreported(state):
    state.add_machine("fresh")  # no report yet
    job = state.register_job("u", "h9", "", ["x"])
    request = _request(state, job.jobid)
    hosts = [m.host for m in state.eligible_machines(request)]
    assert "fresh" not in hosts
    assert set(hosts) == {"h0", "h1", "h2"}


def test_eligible_excludes_home_host(state):
    job = state.register_job("u", "h1", "", ["x"])
    request = _request(state, job.jobid)
    hosts = [m.host for m in state.eligible_machines(request)]
    assert "h1" not in hosts


def test_eligible_respects_console_activity(state):
    state.machine("h0").console_active = True
    job = state.register_job("u", "h9", "", ["x"])
    request = _request(state, job.jobid)
    hosts = [m.host for m in state.eligible_machines(request)]
    assert "h0" not in hosts


def test_eligible_private_only_for_adaptive(state):
    state.machine("h0").kind = "private"
    rigid = state.register_job("u", "h9", "", ["x"])
    adaptive = state.register_job("u", "h9", "+(adaptive)", ["x"])
    r1 = _request(state, rigid.jobid, reqid=1)
    r2 = _request(state, adaptive.jobid, reqid=2)
    assert "h0" not in [m.host for m in state.eligible_machines(r1)]
    assert "h0" in [m.host for m in state.eligible_machines(r2)]


def test_eligible_respects_rsl_machine_constraints(state):
    state.machine("h2").platform = "sparcsolaris"
    job = state.register_job("u", "h9", '+(arch="i686linux")', ["x"])
    request = _request(state, job.jobid, symbolic="anyhost")
    hosts = [m.host for m in state.eligible_machines(request)]
    assert hosts and "h2" not in hosts


def test_idle_machines_public_first(state):
    state.machine("h0").kind = "private"
    job = state.register_job("u", "h9", "+(adaptive)", ["x"])
    request = _request(state, job.jobid)
    idle = state.idle_machines(request)
    assert [m.kind for m in idle] == ["public", "public", "private"]


def test_pending_sorted_firm_fifo_then_elastic_by_holdings(state):
    rich = state.register_job("u", "h9", "+(adaptive)", ["x"])
    poor = state.register_job("u", "h9", "+(adaptive)", ["y"])
    rigid = state.register_job("u", "h9", "", ["z"])
    state.allocate("h0", rich.jobid, firm=False, now=0.0)
    state.allocate("h1", rich.jobid, firm=False, now=0.0)

    e_rich = _request(state, rich.jobid, firm=False, at=1.0, reqid=1)
    e_poor = _request(state, poor.jobid, firm=False, at=2.0, reqid=2)
    f_late = _request(state, rigid.jobid, firm=True, at=3.0, reqid=3)

    order = state.pending_sorted()
    # Firm first despite arriving last; then poorest elastic job.
    assert order == [f_late, e_poor, e_rich]


def test_drop_job_requests(state):
    job = state.register_job("u", "h9", "", ["x"])
    other = state.register_job("u", "h9", "", ["y"])
    _request(state, job.jobid, reqid=1)
    _request(state, other.jobid, reqid=2)
    state.drop_job_requests(job.jobid)
    assert [r.jobid for r in state.pending] == [other.jobid]


def test_summary_shape(state):
    job = state.register_job("ann", "h9", "+(adaptive)", ["x"])
    state.allocate("h0", job.jobid, firm=False, now=0.0)
    summary = state.summary()
    assert summary["machines"]["h0"]["allocated_to"] == job.jobid
    assert summary["machines"]["h1"]["state"] == "free"
    assert summary["jobs"][job.jobid]["user"] == "ann"
    assert summary["jobs"][job.jobid]["holdings"] == 1
    assert summary["pending"] == 0
