"""The incremental indexes agree with the full-scan reference queries.

``BrokerState`` keeps every derived query in two implementations: the
seed's O(machines) scans (``use_indexes = False``) and the incremental
indexes maintained through the record ``__setattr__`` hook.  These tests
drive *both* through identical mutation sequences — including the nasty
paths: console toggles, report loss, death and rejoin, platform changes —
and require identical answers, plus the dirty-scheduling safety invariant
(a clean pending request's decision is always "wait").
"""

from __future__ import annotations

import random

import pytest

from repro.broker.state import BrokerState, PendingRequest
from repro.policy.default import DefaultPolicy

PLATFORMS = ("i686linux", "sparcsolaris")


def _snapshot(platform, kind="public", owner=None, console=False, load=0, t=1.0):
    return {
        "platform": platform,
        "kind": kind,
        "owner": owner,
        "console_active": console,
        "cpu_load": load,
        "n_processes": 1,
        "time": t,
    }


def _build(use_indexes: bool, n: int = 12) -> BrokerState:
    state = BrokerState()
    state.use_indexes = use_indexes
    for i in range(n):
        state.add_machine(f"h{i:02d}")
    # Jobs: an adaptive one (may take private machines) and a rigid one.
    state.register_job("ann", "h00", "+(adaptive)", ["greedy"])
    state.register_job("bob", "h01", "", ["compute"])
    return state


def _mirror(states, op):
    for state in states:
        op(state)


def _queries_agree(indexed: BrokerState, fullscan: BrokerState) -> None:
    assert indexed.all_reported(indexed.machines) == fullscan.all_reported(
        fullscan.machines
    )
    assert {r.host for r in indexed.tracked_records()} == {
        r.host for r in fullscan.tracked_records()
    }
    assert {r.host for r in indexed.leased_records()} == {
        r.host for r in fullscan.leased_records()
    }
    for jobid in indexed.jobs:
        assert indexed.holding_count(jobid) == fullscan.holding_count(jobid)
        # allocations_of promises the seed's machine-table order exactly
        # (broker message sequences depend on it), not just the same set.
        assert [a.host for a in indexed.allocations_of(jobid)] == [
            a.host for a in fullscan.allocations_of(jobid)
        ]
    assert [
        (r.jobid, r.reqid) for r in indexed.pending_sorted()
    ] == [(r.jobid, r.reqid) for r in fullscan.pending_sorted()]
    for request, reference in zip(indexed.pending, fullscan.pending):
        job = indexed.jobs[request.jobid]
        # Unordered agreement for the raw candidate sets (policies sort with
        # total-order keys), exact agreement for the pre-sorted idle list.
        assert {m.host for m in indexed.eligible_machines(request)} == {
            m.host for m in fullscan.eligible_machines(reference)
        }
        reference_idle = fullscan.idle_machines(reference)
        assert [m.host for m in indexed.idle_machines(request)] == [
            m.host for m in reference_idle
        ]
        best = indexed.best_idle(request)
        assert (best.host if best else None) == (
            reference_idle[0].host if reference_idle else None
        )
        assert {m.host for m in indexed.held_eligible(request)} == {
            m.host for m in fullscan.held_eligible(reference)
        }
        assert indexed.satisfiable_somewhere(
            request.symbolic, job
        ) == fullscan.satisfiable_somewhere(
            request.symbolic, fullscan.jobs[request.jobid]
        )


def _clean_requests_would_wait(indexed: BrokerState) -> None:
    """The dirty-scheduling safety invariant: any pending request the policy
    would act on right now must be flagged for re-evaluation."""
    if indexed._all_pending_dirty:
        return
    policy = DefaultPolicy()
    for request in indexed.pending:
        if request.dirty or request.reserved_host is not None:
            continue
        decision = policy.decide(indexed, request)
        assert decision.kind.value == "wait", (
            f"clean request {request.reqid} would {decision.kind.value}: "
            f"a dirty mark was missed"
        )


def test_randomized_mutations_agree_with_fullscan():
    rng = random.Random(7)
    indexed = _build(True)
    fullscan = _build(False)
    states = (indexed, fullscan)
    hosts = sorted(indexed.machines)
    clock = [1.0]

    def tick() -> float:
        clock[0] += 1.0
        return clock[0]

    def op_report(host, platform, kind, owner, console, load):
        t = tick()

        def apply(state):
            state.machines[host].update(
                _snapshot(platform, kind, owner, console, load, t)
            )

        return apply

    def op_lose_report(host):
        def apply(state):
            record = state.machines[host]
            record.last_report = -1.0
            record.leases = ()

        return apply

    def op_mark_dead(host):
        def apply(state):
            record = state.machines[host]
            if record.allocation is not None:
                state.release(host)
            record.dead = True
            record.last_report = -1.0

        return apply

    def op_allocate(host, jobid, firm):
        t = tick()

        def apply(state):
            record = state.machines[host]
            if record.allocation is None:
                state.allocate(host, jobid, firm=firm, now=t)

        return apply

    def op_release(host):
        def apply(state):
            if state.machines[host].allocation is not None:
                state.release(host)

        return apply

    def op_request(reqid, jobid, symbolic, firm):
        t = tick()

        def apply(state):
            state.pending.append(
                PendingRequest(
                    reqid=reqid,
                    jobid=jobid,
                    symbolic=symbolic,
                    firm=firm,
                    arrived_at=t,
                )
            )

        return apply

    def op_drop_request():
        def apply(state):
            if state.pending:
                state.pending.remove(state.pending[0])

        return apply

    reqid = [0]
    for step in range(400):
        host = rng.choice(hosts)
        jobid = rng.choice(sorted(indexed.jobs))
        roll = rng.random()
        if roll < 0.45:
            op = op_report(
                host,
                rng.choice(PLATFORMS),
                rng.choice(("public", "private")),
                rng.choice((None, "ann", "bob")),
                rng.random() < 0.2,
                rng.randrange(3),
            )
        elif roll < 0.55:
            op = op_lose_report(host)
        elif roll < 0.62:
            op = op_mark_dead(host)
        elif roll < 0.78:
            op = op_allocate(host, jobid, rng.random() < 0.5)
        elif roll < 0.88:
            op = op_release(host)
        elif roll < 0.96:
            reqid[0] += 1
            op = op_request(
                reqid[0],
                jobid,
                rng.choice(("anylinux", "anysolaris", "anymachine")),
                rng.random() < 0.5,
            )
        else:
            op = op_drop_request()
        _mirror(states, op)
        if step % 10 == 0:
            _queries_agree(indexed, fullscan)
            _clean_requests_would_wait(indexed)
    _queries_agree(indexed, fullscan)
    _clean_requests_would_wait(indexed)
    # The exercise must have been adversarial enough to mean something.
    assert indexed.machines_scanned < fullscan.machines_scanned


@pytest.fixture
def state():
    s = _build(True, n=4)
    for i, host in enumerate(sorted(s.machines)):
        s.machines[host].update(_snapshot("i686linux", load=i))
    return s


def _request(state, jobid=1, symbolic="anylinux", firm=True, at=5.0, reqid=1):
    request = PendingRequest(
        reqid=reqid, jobid=jobid, symbolic=symbolic, firm=firm, arrived_at=at
    )
    state.pending.append(request)
    return request


def test_idle_partition_tracks_allocation_and_console(state):
    request = _request(state)
    assert [m.host for m in state.idle_machines(request)] == ["h01", "h02", "h03"]
    state.allocate("h01", 1, firm=False, now=6.0)
    assert [m.host for m in state.idle_machines(request)] == ["h02", "h03"]
    state.machines["h02"].console_active = True
    assert [m.host for m in state.idle_machines(request)] == ["h03"]
    state.release("h01")
    state.machines["h02"].console_active = False
    assert [m.host for m in state.idle_machines(request)] == ["h01", "h02", "h03"]


def test_capability_version_tracks_matching_universe(state):
    before = state.capability_version
    # A clock-only report changes nothing matchable: no bump.
    state.machines["h01"].update(_snapshot("i686linux", load=1, t=9.0))
    assert state.capability_version == before
    # A view-field change bumps (the deny memo must re-evaluate).
    state.machines["h01"].update(_snapshot("i686linux", load=2, t=10.0))
    assert state.capability_version > before
    # Losing and regaining a report bumps too (membership changed).
    mid = state.capability_version
    state.machines["h01"].last_report = -1.0
    assert state.capability_version > mid
    assert not state.all_reported(state.machines)
    state.machines["h01"].touch(11.0)
    assert state.all_reported(state.machines)


def test_take_dirty_pending_returns_service_order_and_clears(state):
    state._all_pending_dirty = False  # drain the initial all-dirty batch
    elastic = _request(state, symbolic="anylinux", firm=False, at=1.0, reqid=1)
    firm = _request(state, symbolic="anylinux", firm=True, at=2.0, reqid=2)
    batch = state.take_dirty_pending()
    assert batch == [firm, elastic]  # firm FIFO ahead of elastic
    assert not any(r.dirty for r in state.pending)
    assert state.take_dirty_pending() == []
    # A platform-relevant change re-flags exactly the matching requests.
    state.machines["h01"].cpu_load = 2
    assert [r.reqid for r in state.take_dirty_pending()] == [2, 1]
    # A request for an absent platform stays clean through linux-only churn.
    solaris = _request(state, symbolic="anysolaris", at=3.0, reqid=3)
    state.take_dirty_pending()
    state.machines["h02"].cpu_load = 1
    assert solaris not in state.take_dirty_pending()


def test_removed_request_never_resurfaces_from_dirty_list(state):
    state._all_pending_dirty = False
    request = _request(state)
    state.pending.remove(request)
    assert state.take_dirty_pending() == []
    state.machines["h01"].cpu_load = 1
    assert state.take_dirty_pending() == []
