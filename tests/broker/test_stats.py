"""The live introspection surface: ``stats`` RPC, ``rbstat --stats``, ``rbtop``."""

from repro.broker import protocol
from repro.cluster import ports
from tests.broker.conftest import install_greedy


def _poll_stats(cluster, host="n01"):
    """Fetch one ``stats`` snapshot over the wire, as a raw protocol peer."""
    replies = []

    @cluster.system_bin.register("statpoll")
    def statpoll(proc):
        conn = yield proc.connect("n00", ports.BROKER)
        conn.send(protocol.stats_request())
        reply = yield conn.recv()
        conn.close()
        replies.append(reply)
        return 0

    proc = cluster.run_command(host, ["statpoll"], uid="op")
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    return replies[0]


def test_stats_rpc_round_trip(cluster4):
    reply = _poll_stats(cluster4)
    assert reply["type"] == "stats_reply"
    stats = reply["stats"]
    assert stats["epoch"] == 1
    assert stats["machines"] == 4
    assert stats["machines_reported"] == 4
    assert stats["pending"] == 0
    assert stats["jobs"] == 0
    # The self-metering block is always present, even on an idle broker.
    assert stats["obs"]["tracer"]["sample"] == 1.0
    assert stats["obs"]["metrics"]["mode"] == "exact"
    # Stamped when the broker served it: just before the poller exited.
    assert 0.0 < stats["time"] <= cluster4.now


def test_stats_reflect_broker_activity(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)", uid="alice")
    cluster4.env.run(until=cluster4.now + 10.0)
    stats = _poll_stats(cluster4)["stats"]
    assert stats["jobs"] == 1
    assert stats["grants"] >= 2
    assert stats["leased"] >= 2
    assert stats["grant_rate"] > 0.0
    assert stats["scans_per_grant"] > 0.0
    # The online phase digests saw the decisions as they happened.
    assert stats["phases"]["decision"]["count"] >= 2
    assert stats["metrics"]["broker.grants"]["value"] >= 2
    # Serving the snapshot itself never perturbs the run.
    again = _poll_stats(cluster4)["stats"]
    assert again["grants"] == stats["grants"]


def test_rbstat_stats_writes_telemetry_report(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)", uid="alice")
    cluster4.env.run(until=cluster4.now + 5.0)
    stat = svc.run_rbstat(host="n01", uid="bob", stats=True)
    cluster4.env.run(until=stat.terminated)
    assert stat.exit_code == 0
    report = cluster4.machine("n01").fs.read("/home/bob/.rbstat")
    assert "== broker stats @ t=" in report
    assert "== phases ==" in report
    assert "== obs ==" in report
    assert "tracer: sample=1" in report
    assert "mode=exact" in report
    assert "broker.grants" in report


def test_rbstat_honours_stat_file_override(cluster4):
    stat = cluster4.run_command(
        "n01",
        ["rbstat", "--stats"],
        uid="bob",
        environ={"RB_BROKER_HOST": "n00", "RB_STAT_FILE": "/tmp/stats.txt"},
    )
    cluster4.env.run(until=stat.terminated)
    assert stat.exit_code == 0
    report = cluster4.machine("n01").fs.read("/tmp/stats.txt")
    assert "== broker stats @ t=" in report
    assert not cluster4.machine("n01").fs.exists("/home/bob/.rbstat")


def test_rbtop_polls_the_live_broker(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)", uid="alice")
    started = cluster4.now
    top = svc.run_rbtop(host="n01", uid="bob", polls=3, interval=2.0)
    cluster4.env.run(until=top.terminated)
    assert top.exit_code == 0
    # Three polls, two sleeps between them.
    assert cluster4.now >= started + 4.0
    report = cluster4.machine("n01").fs.read("/home/bob/.rbtop")
    assert "== broker stats @ t=" in report
    # The file holds the *latest* refresh, stamped at the final poll (after
    # both inter-poll sleeps), not the first one.
    stamp = float(report.split("t=", 1)[1].split("s", 1)[0])
    assert stamp >= started + 4.0


def test_rbtop_ambient_fallback_without_a_broker(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "1"], rsl="+(adaptive)", uid="alice")
    cluster4.env.run(until=cluster4.now + 5.0)
    top = cluster4.run_command(
        "n02", ["rbtop"], uid="bob", environ={"RB_TOP_FILE": "/tmp/top.txt"}
    )
    cluster4.env.run(until=top.terminated)
    assert top.exit_code == 0
    dump = cluster4.machine("n02").fs.read("/tmp/top.txt")
    assert "broker.grants" in dump


def test_rbtop_reports_an_unreachable_broker(cluster4):
    top = cluster4.run_command(
        "n01", ["rbtop"], uid="bob", environ={"RB_BROKER_HOST": "n03"}
    )
    cluster4.env.run(until=top.terminated)
    assert top.exit_code == 1
    report = cluster4.machine("n01").fs.read("/home/bob/.rbtop")
    assert report == "error: broker unreachable\n"


# -- durability surface ------------------------------------------------------


def _journaled_cluster():
    from repro.cluster import Cluster, ClusterSpec

    cluster = Cluster(ClusterSpec.uniform(4))
    svc = cluster.start_broker(journal=True)
    svc.wait_ready()
    return cluster, svc


def test_stats_carry_journal_and_recovery_blocks():
    cluster, svc = _journaled_cluster()
    cluster.env.run(until=10.0)
    stats = _poll_stats(cluster)["stats"]
    journal = stats["journal"]
    assert journal["enabled"] is True
    assert journal["records"] > 0
    assert journal["flushes"] > 0
    assert stats["recovery"]["from_journal"] == 0.0

    svc.crash_broker()
    cluster.env.run(until=cluster.now + 2.0)
    svc.restart_broker()
    svc.wait_ready()
    cluster.env.run(until=cluster.now + 10.0)
    stats = _poll_stats(cluster)["stats"]
    assert stats["recovery"]["from_journal"] == 1.0
    assert stats["recovery"]["replayed_records"] > 0
    # Reading the recovery block must not mint absent instruments: the
    # re-registration path was never taken, so its counter never existed.
    assert stats["recovery"]["from_reregistration"] == 0.0
    assert "recovery.from_reregistration" not in svc.metrics._metrics


def test_unjournaled_stats_mark_the_journal_disabled(cluster4):
    stats = _poll_stats(cluster4)["stats"]
    assert stats["journal"] == {"enabled": False}


def test_rbstat_stats_renders_journal_and_recovery_lines():
    cluster, svc = _journaled_cluster()
    cluster.env.run(until=10.0)
    svc.crash_broker()
    cluster.env.run(until=cluster.now + 2.0)
    svc.restart_broker()
    svc.wait_ready()
    cluster.env.run(until=cluster.now + 10.0)
    stat = svc.run_rbstat(host="n01", uid="bob", stats=True)
    cluster.env.run(until=stat.terminated)
    assert stat.exit_code == 0
    report = cluster.machine("n01").fs.read("/home/bob/.rbstat")
    assert "journal: gen=" in report
    assert "recovery: journal=1" in report
