"""Integration tests: rbstat / rbctl user tools and the start_script hook."""

import pytest

from tests.broker.conftest import install_greedy


def test_rbstat_writes_report(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)", uid="alice")
    cluster4.env.run(until=cluster4.now + 5.0)

    stat = svc.run_rbstat(host="n01", uid="bob")
    cluster4.env.run(until=stat.terminated)
    assert stat.exit_code == 0
    report = cluster4.machine("n01").fs.read("/home/bob/.rbstat")
    assert "== machines ==" in report
    assert "== jobs ==" in report
    assert "user=alice" in report
    assert "adaptive=True" in report
    # Every managed machine appears.
    for host in ("n00", "n01", "n02", "n03"):
        assert host in report


def test_rbstat_without_broker_env_fails(cluster4):
    proc = cluster4.run_command("n00", ["rbstat"], uid="bob")
    cluster4.env.run(until=proc.terminated)
    assert proc.exit_code == 1


def test_rbctl_halts_default_path_job(cluster4):
    svc = cluster4.broker
    install_greedy(cluster4)
    handle = svc.submit("n00", ["greedy", "2"], rsl="+(adaptive)")
    cluster4.env.run(until=cluster4.now + 5.0)
    job = handle.job_record()
    assert len(svc.holdings()[job.jobid]) == 2

    ctl = svc.halt_job(job.jobid)
    cluster4.env.run(until=ctl.terminated)
    assert ctl.exit_code == 0
    cluster4.env.run(until=cluster4.now + 10.0)
    assert not handle.proc.is_alive
    assert svc.holdings() == {}
    # The workers are gone from the remote machines too.
    remote_workers = [
        p
        for m in cluster4.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "gracespin"
    ]
    assert remote_workers == []
    assert job.done


def test_rbctl_halts_module_job_via_halt_script(cluster4):
    svc = cluster4.broker
    handle = svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    cluster4.env.run(until=cluster4.now + 3.0)
    add = cluster4.run_command("n00", ["pvm", "add", "n02"], uid="pat")
    cluster4.env.run(until=add.terminated)
    job = handle.job_record()

    ctl = svc.halt_job(job.jobid)
    cluster4.env.run(until=ctl.terminated)
    assert ctl.exit_code == 0
    cluster4.env.run(until=cluster4.now + 15.0)
    # pvm_halt took the whole virtual machine down, which ended the job.
    assert not handle.proc.is_alive
    pvmds = [
        p
        for m in cluster4.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "pvmd"
    ]
    assert pvmds == []
    cluster4.assert_no_crashes()


def test_rbctl_unknown_job_fails(cluster4):
    svc = cluster4.broker
    ctl = svc.halt_job(999)
    cluster4.env.run(until=ctl.terminated)
    assert ctl.exit_code == 1


def test_start_script_runs_before_job(cluster4):
    svc = cluster4.broker
    order = []

    @cluster4.system_bin.register("setup")
    def setup(proc):
        order.append(("setup", proc.env.now))
        proc.write_file("~/.hosts", "anylinux\n")
        yield proc.sleep(1.0)
        return 0

    @cluster4.system_bin.register("mainjob")
    def mainjob(proc):
        order.append(("job", proc.env.now))
        assert proc.file_exists("~/.hosts")
        yield proc.sleep(0)
        return 0

    handle = svc.submit(
        "n00", ["mainjob"], rsl='+(start_script="setup")', uid="s"
    )
    assert handle.wait() == 0
    assert [name for name, _t in order] == ["setup", "job"]
    assert order[1][1] > order[0][1] + 1.0


def test_start_script_failure_aborts_job(cluster4):
    svc = cluster4.broker
    ran = []

    @cluster4.system_bin.register("badsetup")
    def badsetup(proc):
        yield proc.sleep(0)
        return 3

    @cluster4.system_bin.register("neverjob")
    def neverjob(proc):
        ran.append(True)
        yield proc.sleep(0)

    handle = svc.submit(
        "n00", ["neverjob"], rsl='+(start_script="badsetup")'
    )
    assert handle.wait() == 3
    assert ran == []
    # The broker learned the job is done.
    cluster4.env.run(until=cluster4.now + 1.0)
    job = handle.job_record()
    assert job.done


def test_missing_start_script_fails_submission(cluster4):
    svc = cluster4.broker
    handle = svc.submit(
        "n00", ["null"], rsl='+(start_script="no-such-script")'
    )
    assert handle.wait() == 1
