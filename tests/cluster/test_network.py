"""Unit tests for the simulated LAN: connections, listeners, EOF semantics."""

import pytest

from repro.cluster.network import Network
from repro.os import (
    ConnectionClosed,
    ConnectionRefused,
    Machine,
    NoSuchHost,
    OSProcess,
)
from repro.os.programs import ProgramDirectory
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    directory = ProgramDirectory("system")
    for name in ("a", "b"):
        machine = Machine(env, name)
        machine.path = [directory]
        network.add_machine(machine)
    return env, network, directory


def boot(network, host, argv, uid="user"):
    return OSProcess(
        network.machines[host], argv, uid=uid, environ={}, startup_delay=0.0
    )


def test_connect_and_exchange(rig):
    env, network, directory = rig
    log = []

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        msg = yield conn.recv()
        log.append(("server got", msg, env.now))
        conn.send({"reply": msg["x"] + 1})
        yield proc.sleep(1.0)

    @directory.register("client")
    def client(proc):
        conn = yield proc.connect("a", 5000)
        conn.send({"x": 41})
        reply = yield conn.recv()
        log.append(("client got", reply, env.now))

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert log[0][0] == "server got" and log[0][1] == {"x": 41}
    assert log[1][0] == "client got" and log[1][1] == {"reply": 42}
    # Each hop costs one network latency.
    assert log[1][2] > log[0][2] > 0


def test_connect_refused_when_nothing_listens(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("client")
    def client(proc):
        try:
            yield proc.connect("a", 9999)
        except ConnectionRefused:
            outcome["refused"] = True

    boot(network, "b", ["client"])
    env.run()
    assert outcome == {"refused": True}


def test_connect_unknown_host(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("client")
    def client(proc):
        try:
            yield proc.connect("zz", 1)
        except NoSuchHost:
            outcome["nohost"] = True

    boot(network, "b", ["client"])
    env.run()
    assert outcome == {"nohost": True}


def test_duplicate_listen_port_refused(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("server")
    def server(proc):
        proc.listen(700)
        try:
            proc.listen(700)
        except ConnectionRefused:
            outcome["dup"] = True
        yield proc.sleep(0)

    boot(network, "a", ["server"])
    env.run()
    assert outcome == {"dup": True}


def test_close_delivers_eof(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        conn.close()
        yield proc.sleep(1.0)

    @directory.register("client")
    def client(proc):
        conn = yield proc.connect("a", 5000)
        try:
            yield conn.recv()
        except ConnectionClosed:
            outcome["eof"] = env.now
        # subsequent receives keep failing
        try:
            yield conn.recv()
        except ConnectionClosed:
            outcome["eof2"] = True

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert "eof" in outcome and outcome["eof2"] is True


def test_send_after_close_raises(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        conn.close()
        try:
            conn.send("x")
        except ConnectionClosed:
            outcome["raised"] = True

    @directory.register("client")
    def client(proc):
        yield proc.connect("a", 5000)

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert outcome == {"raised": True}


def test_send_into_remotely_closed_peer_is_counted(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        conn.close()
        yield proc.sleep(5.0)

    @directory.register("client")
    def client(proc):
        conn = yield proc.connect("a", 5000)
        yield proc.sleep(1.0)  # let the server's close land
        # The peer is gone: these sends silently vanish (TCP-RST analogue)
        # but each one shows up in the counter.
        conn.send("one")
        conn.send("two")
        yield proc.sleep(1.0)
        outcome["sent"] = True

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert outcome == {"sent": True}
    assert network.metrics.counter("net.dropped_sends").value == 2


def test_messages_ordered(rig):
    env, network, directory = rig
    got = []

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        for _ in range(5):
            got.append((yield conn.recv()))

    @directory.register("client")
    def client(proc):
        conn = yield proc.connect("a", 5000)
        for i in range(5):
            conn.send(i)
        yield proc.sleep(1.0)

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_process_death_closes_its_sockets(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        yield conn.recv()  # never arrives; EOF on client death

    @directory.register("client")
    def client(proc):
        yield proc.connect("a", 5000)
        # exits immediately; its connection must be closed for us

    srv = boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    # Server's recv failed with ConnectionClosed -> process crash recorded.
    assert srv.status.value == "crashed"
    assert isinstance(srv.exception, ConnectionClosed)


def test_listener_close_frees_port(rig):
    env, network, directory = rig

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        listener.close()
        proc.listen(5000)  # port is free again
        yield proc.sleep(0)
        return 0

    p = boot(network, "a", ["server"])
    env.run()
    assert p.exit_code == 0


def test_ephemeral_ports_unique(rig):
    env, network, directory = rig
    a = network.machines["a"]
    p1 = network.ephemeral_port(a)
    p2 = network.ephemeral_port(a)
    assert p1 != p2 and p2 == p1 + 1


def test_duplicate_machine_name_rejected(rig):
    env, network, directory = rig
    with pytest.raises(ValueError):
        network.add_machine(Machine(env, "a"))
