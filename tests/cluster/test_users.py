"""Unit tests for the owner-activity generator."""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec, OwnerActivity


@pytest.fixture
def cluster():
    return Cluster(
        ClusterSpec(
            machines=[
                MachineSpec(name="lab"),
                MachineSpec(name="ws", private_owner="ann"),
            ],
            seed=3,
        )
    )


def test_requires_an_owner(cluster):
    with pytest.raises(ValueError):
        OwnerActivity(cluster.machine("lab"))


def test_alternates_presence(cluster):
    activity = cluster.add_owner_activity(
        "ws", mean_away=100.0, mean_present=50.0
    )
    machine = cluster.machine("ws")
    assert machine.console_active is False
    # Run long enough for several sessions.
    cluster.env.run(until=3000.0)
    assert len(activity.sessions) >= 3
    for session in activity.sessions[:-1]:
        assert session.end is not None
        assert session.end > session.start


def test_initially_present(cluster):
    activity = cluster.add_owner_activity(
        "ws", mean_away=100.0, mean_present=50.0, initially_present=True
    )
    machine = cluster.machine("ws")
    assert machine.console_active is True
    assert "ann" in machine.logged_in
    assert activity.sessions[0].start == 0.0


def test_console_state_tracks_sessions(cluster):
    activity = cluster.add_owner_activity(
        "ws", mean_away=60.0, mean_present=60.0
    )
    machine = cluster.machine("ws")
    observations = []

    def sampler():
        while True:
            yield cluster.env.timeout(5.0)
            observations.append(machine.console_active)

    cluster.env.process(sampler())
    cluster.env.run(until=2000.0)
    assert True in observations and False in observations


def test_stop_halts_generator(cluster):
    activity = cluster.add_owner_activity(
        "ws", mean_away=10.0, mean_present=10.0
    )
    cluster.env.run(until=100.0)
    count = len(activity.sessions)
    activity.stop()
    cluster.env.run(until=1000.0)
    assert len(activity.sessions) == count


def test_sessions_deterministic_per_seed():
    def starts(seed):
        c = Cluster(
            ClusterSpec(
                machines=[MachineSpec(name="ws", private_owner="a")],
                seed=seed,
            )
        )
        act = c.add_owner_activity("ws", mean_away=50.0, mean_present=20.0)
        c.env.run(until=1000.0)
        return [s.start for s in act.sessions]

    assert starts(7) == starts(7)
    assert starts(7) != starts(8)
