"""The soak's workload generators: diurnal arrivals and owner windows."""

import pytest

from repro.cluster import Cluster, ClusterSpec, MachineSpec
from repro.workloads import (
    diurnal_owner_windows,
    diurnal_rate,
    replay_owner_windows,
    trace_arrivals,
)


def _cluster():
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="p00", private_owner="ann"),
        ],
        seed=5,
    )
    return Cluster(spec)


def test_diurnal_rate_sweeps_base_to_peak_and_back():
    assert diurnal_rate(0.0, 0.2, 2.0, day=100.0) == pytest.approx(0.2)
    assert diurnal_rate(50.0, 0.2, 2.0, day=100.0) == pytest.approx(2.0)
    assert diurnal_rate(100.0, 0.2, 2.0, day=100.0) == pytest.approx(0.2)
    for t in range(0, 100, 7):
        assert 0.2 <= diurnal_rate(float(t), 0.2, 2.0, day=100.0) <= 2.0


def test_trace_arrivals_is_seeded_ordered_and_bounded():
    env = _cluster().env
    trace = trace_arrivals(env, horizon=600.0, min_seconds=0.5, max_seconds=6.0)
    assert len(trace) > 0
    assert trace.arrivals == sorted(trace.arrivals)
    assert all(0.0 <= at <= 600.0 for at in trace.arrivals)
    assert all(0.5 <= d <= 6.0 for d in trace.durations)
    assert list(trace.jobs()) == list(zip(trace.arrivals, trace.durations))
    # Same seed, same trace — the soak's determinism rests on this.
    again = trace_arrivals(
        _cluster().env, horizon=600.0, min_seconds=0.5, max_seconds=6.0
    )
    assert again.arrivals == trace.arrivals
    assert again.durations == trace.durations


def test_trace_arrivals_max_jobs_caps_the_trace():
    env = _cluster().env
    trace = trace_arrivals(env, horizon=10_000.0, max_jobs=25)
    assert len(trace) == 25


def test_arrivals_cluster_around_the_diurnal_peak():
    env = _cluster().env
    day = 600.0
    trace = trace_arrivals(
        env, horizon=10 * day, base_rate=0.1, peak_rate=2.0, day=day
    )
    midday = sum(1 for at in trace.arrivals if 0.25 < (at / day) % 1.0 < 0.75)
    # The raised-cosine rate concentrates arrivals mid-cycle.
    assert midday > 0.6 * len(trace)


def test_owner_windows_are_sorted_disjoint_and_inside_the_horizon():
    env = _cluster().env
    windows = dict(
        diurnal_owner_windows(env, ["p00"], horizon=3000.0, day=600.0)
    )
    assert set(windows) == {"p00"}
    spans = windows["p00"]
    assert spans  # ~5 workdays in the horizon
    last_off = -1.0
    for on, off in spans:
        assert last_off < on < off <= 3000.0
        last_off = off


def test_replay_owner_windows_toggles_console_presence():
    cluster = _cluster()
    env = cluster.env
    machine = cluster.machine("p00")
    env.process(
        replay_owner_windows(env, machine, [(5.0, 10.0), (20.0, 30.0)]),
        name="owner@p00",
    )
    assert not machine.console_active
    env.run(until=6.0)
    assert machine.console_active
    assert "ann" in machine.logged_in
    env.run(until=11.0)
    assert not machine.console_active
    assert "ann" not in machine.logged_in
    env.run(until=21.0)
    assert machine.console_active
    env.run(until=31.0)
    assert not machine.console_active
