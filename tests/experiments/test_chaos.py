"""The chaos experiment: jobs complete despite crashes and partitions."""

from repro.experiments import run_chaos


def test_small_chaos_run_completes_every_job():
    table = run_chaos(
        seed=1, machines=3, sequential_jobs=1, horizon=240.0, crashes=2
    )
    assert table.meta["completed"] == table.meta["jobs"] == 2
    assert table.meta["faults_injected"] == len(table.meta["plan"].splitlines())
    rendered = str(table)
    assert "machine crashes injected" in rendered
    assert "jobs completed" in rendered


def test_chaos_detects_and_recovers():
    """At least one crash outlives the liveness deadline, so the broker must
    have marked a machine dead; reboots mean it also saw rejoins."""
    table = run_chaos(
        seed=1, machines=3, sequential_jobs=1, horizon=240.0, crashes=2
    )
    rows = {row.label: row.values[0] for row in table.rows}
    assert rows["machines declared dead"] >= 1
    assert rows["machine rejoins"] >= 1
    assert rows["jobs completed"] == table.meta["completed"]
