"""The chaos experiment: jobs complete despite crashes and partitions."""

from repro.experiments import run_chaos


def test_small_chaos_run_completes_every_job():
    table = run_chaos(
        seed=1, machines=3, sequential_jobs=1, horizon=240.0, crashes=2
    )
    assert table.meta["completed"] == table.meta["jobs"] == 2
    assert table.meta["faults_injected"] == len(table.meta["plan"].splitlines())
    rendered = str(table)
    assert "machine crashes injected" in rendered
    assert "jobs completed" in rendered


def test_chaos_with_broker_crash_completes_every_job():
    """The full acceptance scenario: machine crashes, a partition, *and* a
    broker SIGKILL + restart — every job still completes, and no machine is
    left allocated (every lease was re-adopted or reclaimed)."""
    table = run_chaos(seed=1, broker_crashes=1)
    assert table.meta["completed"] == table.meta["jobs"]
    assert table.meta["stuck_allocations"] == 0
    rendered = str(table)
    assert "broker crashes injected" in rendered
    assert "sessions resumed" in rendered
    rows = {row.label: row.values[0] for row in table.rows}
    assert rows["broker crashes injected"] == 1
    assert rows["broker restarts"] >= 1
    assert rows["daemon re-registrations"] >= 1


def test_chaos_detects_and_recovers():
    """At least one crash outlives the liveness deadline, so the broker must
    have marked a machine dead; reboots mean it also saw rejoins."""
    table = run_chaos(
        seed=1, machines=3, sequential_jobs=1, horizon=240.0, crashes=2
    )
    rows = {row.label: row.values[0] for row in table.rows}
    assert rows["machines declared dead"] >= 1
    assert rows["machine rejoins"] >= 1
    assert rows["jobs completed"] == table.meta["completed"]
