"""Federated chaos: ``run_chaos(shards=N)`` / ``python -m repro chaos --shards``.

The acceptance gate for the federated control plane under fire: shard 1's
broker is SIGKILLed and restarted, the shard 0 <-> shard 1 control link
partitions, machines crash and the LAN misbehaves — and still every job
completes, no machine is ever double-granted, and the same seed reproduces
the run byte-for-byte.
"""

import pytest

from repro.experiments import run_chaos


def test_federated_chaos_every_job_completes():
    table = run_chaos(seed=1, shards=2)
    assert table.meta["completed"] == table.meta["jobs"]
    assert table.meta["double_grants"] == 0
    assert table.meta["shards"] == 2
    # The schedule really exercised the federation: a shard-broker crash,
    # an inter-shard link partition, and actual cross-shard borrowing.
    plan = table.meta["plan"]
    assert "shard_link_partition" in plan
    assert "broker_crash" in plan
    fed = table.meta["federation"]
    assert fed["cross_shard_grants"] >= 1
    assert fed["loans_out"] >= 1
    # Every shard reports its own federation block.
    assert len(table.meta["shard_stats"]) == 2
    assert table.meta["stuck_allocations"] == 0


def test_federated_chaos_three_shards():
    table = run_chaos(seed=2, shards=3)
    assert table.meta["completed"] == table.meta["jobs"]
    assert table.meta["double_grants"] == 0
    assert len(table.meta["shard_stats"]) == 3


def test_federated_chaos_same_seed_byte_identical():
    a = run_chaos(seed=4, shards=2)
    b = run_chaos(seed=4, shards=2)
    assert str(a) == str(b)
    assert a.meta == b.meta


def test_standby_and_federation_are_exclusive():
    with pytest.raises(ValueError):
        run_chaos(seed=1, standby=True, shards=2)
