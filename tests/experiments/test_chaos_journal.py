"""Journaled chaos: ``run_chaos(journal=True)`` / ``python -m repro chaos --journal``.

The chaos experiment with the durable broker adds journal-specific faults
(torn writes, disk stalls) and recovery rows to the table; same seed must
still mean byte-identical output.
"""

from repro.experiments import run_chaos


def _rows(table):
    return {row.label: row.values[0] for row in table.rows}


def test_journaled_chaos_completes_and_recovers_from_disk():
    table = run_chaos(seed=1, journal=True)
    assert table.meta["completed"] == table.meta["jobs"]
    assert table.meta["stuck_allocations"] == 0
    assert table.meta["journal"] is True
    rows = _rows(table)
    assert rows["broker crashes injected"] >= 1
    assert rows["journal torn writes injected"] >= 1
    assert rows["disk stalls injected"] >= 1
    assert rows["recoveries from journal"] >= 1
    assert rows["recoveries from re-registration"] == 0
    assert rows["journal records replayed"] > 0
    rendered = str(table)
    assert "recoveries from journal" in rendered
    assert table.meta["recovery"]["from_journal"] >= 1


def test_unjournaled_chaos_has_no_journal_rows():
    table = run_chaos(seed=1, machines=3, sequential_jobs=1, horizon=240.0,
                      crashes=1)
    assert table.meta.get("journal") is False
    assert "recoveries from journal" not in str(table)


def test_journaled_chaos_same_seed_is_byte_identical():
    a = str(run_chaos(seed=4, journal=True))
    b = str(run_chaos(seed=4, journal=True))
    assert a == b


def test_journal_faults_change_nothing_about_job_outcomes():
    """Durability faults are broker-side only: every job still completes."""
    table = run_chaos(seed=9, journal=True, broker_crashes=2)
    assert table.meta["completed"] == table.meta["jobs"]
    assert table.meta["stuck_allocations"] == 0
    rows = _rows(table)
    assert rows["broker crashes injected"] == 2
    assert rows["recoveries from journal"] == 2
