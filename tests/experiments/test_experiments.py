"""Smoke tests for the experiment harnesses (full runs live in benchmarks/).

These verify the harness plumbing — fresh clusters per measurement, result
table shapes, metadata — at reduced scale so the main suite stays fast.
"""

import pytest

from repro.experiments import run_table1, run_table2, run_utilization
from repro.experiments.fig7 import measure_reallocation, run_fig7
from repro.experiments.results import ExperimentTable


def test_results_table_api():
    table = ExperimentTable(title="T", columns=["Op", "A", "B"])
    table.add("row1", 1.0, 2.0)
    assert table.value("row1") == 1.0
    assert table.value("row1", "B") == 2.0
    with pytest.raises(KeyError):
        table.value("nope")
    rendered = str(table)
    assert "T" in rendered and "row1" in rendered and "2.000" in rendered


def test_table1_rows_and_overhead():
    table = run_table1()
    assert [r.label for r in table.rows] == [
        "rsh n01 null",
        "rsh' n01 null",
        "rsh' anylinux null",
        "rsh n01 loop",
        "rsh' n01 loop",
        "rsh' anylinux loop",
    ]
    assert 0.15 <= table.meta["rshp_overhead_null"] <= 0.45


def test_table1_deterministic():
    a = run_table1(seed=3)
    b = run_table1(seed=3)
    assert [r.values for r in a.rows] == [r.values for r in b.rows]


def test_table2_crossover():
    table = run_table2()
    assert table.meta["loop_crossover"] is True
    assert table.value("rsh' anylinux null") > table.value("rsh n01 null")


def test_fig7_single_point():
    result = measure_reallocation(2)
    assert result["k"] == 2
    assert len(result["grant_times"]) == 2
    assert result["grant_times"] == sorted(result["grant_times"])
    assert 1.0 <= result["per_machine"] <= 2.5


def test_fig7_table_shape():
    table = run_fig7(sizes=[1, 3])
    assert [r.label for r in table.rows] == ["1", "3"]
    assert table.meta["sizes"] == [1, 3]


def test_utilization_short_horizon():
    table = run_utilization(horizon=600.0)
    assert table.meta["idleness"] < 0.05
    assert table.value("sequential jobs submitted") == 5
    by_host = table.meta["utilization_by_host"]
    assert len(by_host) == 8


def test_utilization_machine_count_parameter():
    table = run_utilization(horizon=300.0, machines=4)
    assert table.value("machines") == 4
    assert len(table.meta["utilization_by_host"]) == 4
