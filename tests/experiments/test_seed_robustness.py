"""Seed robustness: the headline claims hold across random seeds.

The calibration pins absolute numbers at seed 0; these tests check the
*conclusions* survive reseeding (short horizons keep the suite fast)."""

import pytest

from repro.experiments import run_table1, run_utilization
from repro.experiments.fig7 import measure_reallocation


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_utilization_above_99_percent_for_any_seed(seed):
    table = run_utilization(horizon=900.0, seed=seed)
    assert table.meta["idleness"] < 0.01


@pytest.mark.parametrize("seed", [1, 7])
def test_rshp_overhead_stable_across_seeds(seed):
    table = run_table1(seed=seed)
    assert 0.15 <= table.meta["rshp_overhead_null"] <= 0.45


@pytest.mark.parametrize("seed", [1, 7])
def test_reallocation_per_machine_stable(seed):
    result = measure_reallocation(3, seed=seed)
    assert 0.8 <= (result["grant_times"][-1] - result["grant_times"][0]) / 2 <= 1.3
