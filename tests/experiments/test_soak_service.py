"""The service-mode soak harness (``repro.experiments.soak``).

Small traces here; the 100k-submission run lives in
``benchmarks/bench_soak.py`` and is gated by ``make soak-smoke``.
"""

from repro.experiments import run_soak


def _deterministic_fields(report):
    return (
        report.completed,
        report.failed,
        report.grants,
        report.revocations,
        report.recoveries_from_journal,
        report.replayed_records,
        report.recovery_conflicts,
        report.journal_compactions,
        report.journal_bytes,
        report.finished_at,
    )


def test_small_soak_drains_with_a_mid_trace_restart():
    report = run_soak(seed=3, machines=8, submissions=120, restarts=1)
    assert report.drained
    assert report.completed == 120
    assert report.stuck_allocations == 0
    assert report.recoveries_from_journal == 1
    assert report.replayed_records > 0
    assert report.grants >= 120
    rendered = report.render()
    assert "120 submissions" in rendered
    assert "journal" in rendered


def test_soak_is_deterministic_across_runs():
    a = run_soak(seed=7, machines=6, submissions=80, restarts=1)
    # Metering must not perturb the simulation: the second run samples
    # memory, the first does not, and every deterministic field still agrees.
    b = run_soak(seed=7, machines=6, submissions=80, restarts=1,
                 memory_checkpoints=8)
    assert _deterministic_fields(a) == _deterministic_fields(b)
    assert b.memory_samples and not a.memory_samples


def test_soak_without_journal_still_drains():
    report = run_soak(seed=3, machines=6, submissions=80, restarts=1,
                      journal=False)
    assert report.drained
    assert report.stuck_allocations == 0
    assert report.recoveries_from_journal == 0
    assert report.journal_bytes == 0


def test_soak_journal_stays_bounded():
    small = run_soak(seed=11, machines=6, submissions=100, restarts=0)
    large = run_soak(seed=11, machines=6, submissions=400, restarts=0)
    assert small.drained and large.drained
    # 4x the trace must not mean 4x the disk: compaction caps the journal
    # near compact_bytes plus the retained snapshot generations.
    assert large.journal_compactions > small.journal_compactions
    assert large.journal_bytes < 2 * max(small.journal_bytes, 65536)


def test_soak_cli_runs_and_reports(capsys):
    from repro.__main__ import main

    assert main(["soak", "--submissions", "60", "--machines", "6"]) == 0
    out = capsys.readouterr().out
    assert "== soak:" in out
    assert "completed=60" in out
