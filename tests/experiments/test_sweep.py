"""The sweep runner's determinism contract and merge/report helpers."""

import json

import pytest

# `bench_report` is aliased: this suite collects `bench_*` names as tests.
from repro.experiments.sweep import bench_report as make_bench_report
from repro.experiments.sweep import (
    canonical_json,
    expand_grid,
    merge_results,
    run_cell,
    run_sweep,
)


def test_expand_grid_canonical_order():
    grid = expand_grid(["sequential", "churn"], [16, 8], [2, 1])
    assert grid == [
        ("churn", 8, 1),
        ("churn", 8, 2),
        ("churn", 16, 1),
        ("churn", 16, 2),
        ("sequential", 8, 1),
        ("sequential", 8, 2),
        ("sequential", 16, 1),
        ("sequential", 16, 2),
    ]


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        run_sweep(workloads=["nope"], sizes=[4], seeds=[1], sim_minutes=0.1)


def test_cell_is_a_pure_function_of_its_parameters():
    a = run_cell("sequential", 4, seed=3, sim_minutes=0.5)
    b = run_cell("sequential", 4, seed=3, sim_minutes=0.5)
    assert a["result"] == b["result"]  # perf may differ; results never


def test_serial_and_parallel_sweeps_merge_byte_identically():
    kwargs = dict(
        workloads=["churn"], sizes=[4, 6], seeds=[1, 2], sim_minutes=0.5
    )
    serial = run_sweep(workers=1, **kwargs)
    fanned = run_sweep(workers=2, **kwargs)
    doc_serial = canonical_json(merge_results(serial, 0.5))
    doc_fanned = canonical_json(merge_results(fanned, 0.5))
    assert doc_serial == doc_fanned
    assert json.loads(doc_serial)["digest"] == json.loads(doc_fanned)["digest"]


def test_merge_strips_measured_perf():
    cells = run_sweep(
        workloads=["sequential"], sizes=[4], seeds=[1], sim_minutes=0.2
    )
    merged = merge_results(cells, 0.2)
    assert "perf" not in canonical_json(merged)
    assert merged["grid"] == {
        "workloads": ["sequential"],
        "machines": [4],
        "seeds": [1],
        "sim_minutes": 0.2,
    }
    assert len(merged["runs"]) == 1
    assert merged["runs"][0]["result"]["heap"]["processed"] > 0


def test_bench_report_keeps_first_seed_per_size():
    cells = run_sweep(
        workloads=["sequential"], sizes=[4], seeds=[1, 2], sim_minutes=0.2
    )
    report = make_bench_report(cells, 0.2, workload="sequential")
    assert list(report["sizes"]) == ["4"]
    entry = report["sizes"]["4"]
    assert entry["events_processed"] == cells[0]["result"]["heap"]["processed"]
    assert entry["wall_seconds"] >= 0


def test_sweep_cli_writes_canonical_output(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "sweep.json"
    args = [
        "sweep", "--sizes", "4", "--seeds", "1", "--workloads", "sequential",
        "--minutes", "0.2", "--out", str(out),
    ]
    assert main(args) == 0
    text = capsys.readouterr().out
    assert "digest" in text
    first = out.read_text()
    assert main(args) == 0
    assert out.read_text() == first  # re-run is byte-identical
