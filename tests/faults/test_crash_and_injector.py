"""Machine crash/boot semantics and the fault injector."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.faults import (
    DaemonKill,
    FaultInjector,
    FaultPlan,
    MachineCrash,
    Partition,
)
from repro.os.errors import ConnectionRefused


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(3, seed=5))


def test_crash_kills_resident_processes(cluster):
    cluster.env.run(until=1.0)
    victim = cluster.machine("n01")
    spin = cluster.run_command("n01", ["spin"])
    cluster.env.run(until=2.0)
    assert spin.is_alive
    killed = victim.crash()
    assert killed >= 2  # rshd + spin at least
    assert not victim.up
    assert not spin.is_alive
    # Idempotent while down.
    assert victim.crash() == 0


def test_down_machine_refuses_connections(cluster):
    outcome = {}
    cluster.machine("n01").crash()

    @cluster.system_bin.register("probe")
    def probe(proc):
        try:
            yield proc.connect("n01", 514)
        except ConnectionRefused as exc:
            outcome["error"] = str(exc)

    cluster.run_command("n02", ["probe"])
    cluster.env.run(until=1.0)
    assert "down" in outcome["error"]


def test_crash_machine_reboots_with_fresh_rshd(cluster):
    cluster.env.run(until=1.0)
    old_rshd = cluster.rshds["n01"]
    cluster.crash_machine("n01", reboot_after=3.0)
    assert not cluster.machine("n01").up
    cluster.env.run(until=5.0)
    machine = cluster.machine("n01")
    assert machine.up
    assert cluster.rshds["n01"] is not old_rshd
    assert cluster.rshds["n01"].is_alive

    outcome = {}

    @cluster.system_bin.register("probe")
    def probe(proc):
        code = yield from __import__(
            "repro.rsh.client", fromlist=["remote_exec"]
        ).remote_exec(proc, "n01", ["null"])
        outcome["code"] = code

    cluster.run_command("n02", ["probe"])
    cluster.env.run(until=7.0)
    assert outcome["code"] == 0


def test_crash_machine_without_reboot_stays_down(cluster):
    cluster.env.run(until=1.0)
    cluster.crash_machine("n01", reboot_after=None)
    cluster.env.run(until=30.0)
    assert not cluster.machine("n01").up
    cluster.boot_machine("n01")
    assert cluster.machine("n01").up


def test_injector_executes_plan_in_order_with_observability(cluster):
    plan = FaultPlan()
    plan.add(MachineCrash(at=2.0, host="n01", reboot_after=4.0))
    plan.add(Partition(at=3.0, duration=2.0, hosts=("n02",)))
    plan.add(DaemonKill(at=4.0, host="n02"))
    injector = FaultInjector(cluster, plan).start()
    cluster.env.run(until=10.0)

    assert [f.kind for f in injector.injected] == [
        "machine_crash",
        "partition",
        "daemon_kill",
    ]
    metrics = cluster.network.metrics
    assert metrics.counter("faults.injected").value == 3
    assert metrics.counter("faults.machine_crash").value == 1
    spans = {s.name for s in cluster.network.tracer.spans}
    assert {"fault.machine_crash", "fault.partition", "fault.daemon_kill"} <= spans
    crash_span = cluster.network.tracer.spans_named("fault.machine_crash")[0]
    assert crash_span.started_at == pytest.approx(2.0)
    assert crash_span.attrs["host"] == "n01"
    # The machine rebooted per the plan.
    assert cluster.machine("n01").up


def test_injector_daemon_kill_only_kills_rbdaemons(cluster):
    svc = cluster.start_broker()
    svc.wait_ready()
    spin = cluster.run_command("n01", ["spin"])
    daemons = [
        p
        for p in cluster.machine("n01").procs.values()
        if p.argv and p.argv[0] == "rbdaemon"
    ]
    assert daemons
    plan = FaultPlan().add(DaemonKill(at=cluster.now + 1.0, host="n01"))
    FaultInjector(cluster, plan).start()
    cluster.env.run(until=cluster.now + 2.0)
    assert all(not d.is_alive for d in daemons)
    assert spin.is_alive
    cluster.assert_no_crashes()


def test_injector_done_event_fires_after_last_fault(cluster):
    plan = FaultPlan().add(MachineCrash(at=5.0, host="n01"))
    injector = FaultInjector(cluster, plan).start()
    cluster.env.run(until=injector.done)
    assert cluster.now == pytest.approx(5.0)
