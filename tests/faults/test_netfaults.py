"""Network fault model: partitions, lossy windows, latency spikes, sever."""

import pytest

from repro.cluster.network import Network
from repro.faults.netfaults import NetworkFaults, install
from repro.os import ConnectionClosed, ConnectionRefused, Machine, OSProcess
from repro.os.programs import ProgramDirectory
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    directory = ProgramDirectory("system")
    for name in ("a", "b"):
        machine = Machine(env, name)
        machine.path = [directory]
        network.add_machine(machine)
    return env, network, directory


def boot(network, host, argv, uid="user"):
    return OSProcess(
        network.machines[host], argv, uid=uid, environ={}, startup_delay=0.0
    )


def _echo_pair(env, network, directory, log):
    """Server on a, client on b; client sends forever every 1s."""

    @directory.register("server")
    def server(proc):
        listener = proc.listen(5000)
        conn = yield listener.accept()
        try:
            while True:
                msg = yield conn.recv()
                log.append((env.now, msg))
        except ConnectionClosed:
            return 0

    @directory.register("client")
    def client(proc):
        conn = yield proc.connect("a", 5000)
        for i in range(20):
            try:
                conn.send({"type": "tick", "i": i})
            except ConnectionClosed:
                return 1
            yield proc.sleep(1.0)
        return 0

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])


def test_install_is_idempotent(rig):
    env, network, directory = rig
    faults = install(network)
    assert isinstance(faults, NetworkFaults)
    assert install(network) is faults


def test_partition_drops_sends_and_expires(rig):
    env, network, directory = rig
    log = []
    _echo_pair(env, network, directory, log)
    faults = install(network)

    def partitioner():
        yield env.timeout(4.5)
        faults.add_partition(["b"], duration=5.0)

    env.process(partitioner())
    env.run()
    received = [m["i"] for _, m in log]
    # Ticks 5..9 fall inside the window [4.5, 9.5) and vanish; the rest
    # arrive, because the window expires without anyone "healing" anything.
    assert 4 in received and 10 in received
    assert not any(i in received for i in (5, 6, 7, 8, 9))
    assert network.metrics.counter("net.partition_drops").value == 5


def test_partition_refuses_new_connects(rig):
    env, network, directory = rig
    outcome = {}
    faults = install(network)
    faults.add_partition(["b"], duration=10.0)

    @directory.register("server")
    def server(proc):
        proc.listen(5000)
        yield proc.sleep(20.0)

    @directory.register("client")
    def client(proc):
        try:
            yield proc.connect("a", 5000)
        except ConnectionRefused:
            outcome["refused_at"] = env.now
        try:
            yield proc.sleep(11.0)
            yield proc.connect("a", 5000)
            outcome["connected_after"] = True
        except ConnectionRefused:
            pass

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert "refused_at" in outcome
    assert outcome.get("connected_after") is True
    assert network.metrics.counter("net.partition_refused").value == 1


def test_partition_does_not_cut_same_side_hosts(rig):
    env, network, directory = rig
    faults = install(network)
    faults.add_partition(["a", "b"], duration=10.0)
    # Both hosts are on the same side of the cut: traffic flows.
    assert not faults.partitioned("a", "b")
    assert faults.partitioned("a", None)  # vs. everyone else


def test_drop_rule_filters_by_message_type(rig):
    env, network, directory = rig
    faults = install(network)
    faults.add_drop_rule(10.0, probability=1.0, only_types=("heartbeat",))
    assert faults.should_drop("a", "b", {"type": "heartbeat"})
    assert not faults.should_drop("a", "b", {"type": "data"})
    assert not faults.should_drop("a", "b", "not-a-dict")


def test_drop_rule_probability_draws_from_named_stream(rig):
    env, network, directory = rig
    faults = install(network)
    faults.add_drop_rule(1000.0, probability=0.5)
    outcomes = [faults.should_drop("a", "b", {"type": "x"}) for _ in range(200)]
    dropped = sum(outcomes)
    assert 50 < dropped < 150  # not all, not none

    # Same seed => same drop decisions (the stream is seed-derived).
    env2 = Environment(seed=env.rng.seed)
    network2 = Network(env2)
    faults2 = install(network2)
    faults2.add_drop_rule(1000.0, probability=0.5)
    outcomes2 = [
        faults2.should_drop("a", "b", {"type": "x"}) for _ in range(200)
    ]
    assert outcomes == outcomes2


def test_latency_spike_multiplies_and_expires(rig):
    env, network, directory = rig
    faults = install(network)
    base = network.latency
    faults.add_latency_spike(5.0, factor=10.0)
    assert faults.latency(base) == pytest.approx(base * 10.0)

    def later():
        yield env.timeout(6.0)
        assert faults.latency(base) == pytest.approx(base)

    env.process(later())
    env.run()


def test_fault_drops_are_counted(rig):
    env, network, directory = rig
    log = []
    _echo_pair(env, network, directory, log)
    faults = install(network)

    def dropper():
        yield env.timeout(2.5)
        faults.add_drop_rule(3.0, probability=1.0, only_types=("tick",))

    env.process(dropper())
    env.run()
    received = [m["i"] for _, m in log]
    assert 2 in received and 6 in received
    assert 3 not in received and 4 not in received
    assert network.metrics.counter("net.fault_drops").value == 3


def test_sever_closes_cross_cut_connections(rig):
    env, network, directory = rig
    log = []
    _echo_pair(env, network, directory, log)
    faults = install(network)

    def severer():
        yield env.timeout(3.5)
        faults.add_partition(["b"], duration=1000.0)
        count = network.sever(faults.partitioned)
        log.append((env.now, {"type": "severed", "i": count}))

    env.process(severer())
    env.run()
    severed = [m for _, m in log if m["type"] == "severed"]
    assert severed and severed[0]["i"] == 1
    # Both sides saw EOF: the client stopped sending long before tick 19.
    ticks = [m["i"] for _, m in log if m["type"] == "tick"]
    assert max(ticks) == 3
    assert network.metrics.counter("net.severed_connections").value == 1
