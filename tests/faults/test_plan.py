"""Fault plans: seeded generation, ordering, summaries."""

from repro.faults import (
    BrokerCrash,
    BrokerRestart,
    FaultPlan,
    LatencySpike,
    MachineCrash,
    Partition,
)
from repro.sim.rng import SimRandom

HOSTS = ["n01", "n02", "n03", "n04"]


def test_generate_counts_match_parameters():
    plan = FaultPlan.generate(
        SimRandom(3).stream("faults.plan"),
        HOSTS,
        crashes=4,
        daemon_kills=2,
        partitions=2,
        drop_windows=1,
        latency_spikes=3,
    )
    assert plan.count("machine_crash") == 4
    assert plan.count("daemon_kill") == 2
    assert plan.count("partition") == 2
    assert plan.count("message_drop") == 1
    assert plan.count("latency_spike") == 3
    assert len(plan) == 12


def test_generate_is_a_pure_function_of_the_seed():
    a = FaultPlan.generate(SimRandom(7).stream("faults.plan"), HOSTS)
    b = FaultPlan.generate(SimRandom(7).stream("faults.plan"), HOSTS)
    assert a.faults == b.faults
    assert a.summary() == b.summary()


def test_different_seeds_give_different_plans():
    a = FaultPlan.generate(SimRandom(1).stream("faults.plan"), HOSTS)
    b = FaultPlan.generate(SimRandom(2).stream("faults.plan"), HOSTS)
    assert a.faults != b.faults


def test_generated_faults_stay_in_window_and_on_given_hosts():
    plan = FaultPlan.generate(
        SimRandom(11).stream("faults.plan"), HOSTS, start=10.0, window=20.0
    )
    for fault in plan.faults:
        assert 10.0 <= fault.at < 30.0
        if hasattr(fault, "host"):
            assert fault.host in HOSTS
        if hasattr(fault, "hosts"):
            assert set(fault.hosts) <= set(HOSTS)


def test_broker_crashes_come_paired_with_restarts():
    plan = FaultPlan.generate(
        SimRandom(3).stream("faults.plan"),
        HOSTS,
        broker_crashes=2,
        broker_restart_after=4.0,
    )
    assert plan.count("broker_crash") == 2
    assert plan.count("broker_restart") == 2
    crashes = sorted(
        f.at for f in plan.faults if isinstance(f, BrokerCrash)
    )
    restarts = sorted(
        f.at for f in plan.faults if isinstance(f, BrokerRestart)
    )
    assert restarts == [at + 4.0 for at in crashes]


def test_broker_faults_do_not_reshuffle_the_rest_of_the_plan():
    """Turning broker crashes on must not perturb the machine-level fault
    schedule drawn from the same seed (the broker draws come last)."""
    without = FaultPlan.generate(SimRandom(7).stream("faults.plan"), HOSTS)
    with_broker = FaultPlan.generate(
        SimRandom(7).stream("faults.plan"), HOSTS, broker_crashes=2
    )
    machine_level = [
        f for f in with_broker.faults
        if not isinstance(f, (BrokerCrash, BrokerRestart))
    ]
    assert machine_level == list(without.faults)


def test_sorted_orders_by_firing_time():
    plan = FaultPlan()
    plan.add(MachineCrash(at=5.0, host="b"))
    plan.add(LatencySpike(at=1.0, duration=2.0))
    plan.add(Partition(at=3.0, duration=2.0, hosts=("a",)))
    assert [f.at for f in plan.sorted()] == [1.0, 3.0, 5.0]


def test_summary_lists_every_fault_in_order():
    plan = FaultPlan().add(MachineCrash(at=2.0, host="n01", reboot_after=4.0))
    plan.add(Partition(at=1.0, duration=6.0, hosts=("n02",)))
    lines = plan.summary().splitlines()
    assert len(lines) == 2
    assert "partition" in lines[0]
    assert "machine_crash" in lines[1]
    assert "n01" in lines[1]
