"""TraceCollector, write_trace, the --trace CLI flag and rbtrace/rbtop.

The demo smoke test doubles as the lint-adjacent acceptance check: the CLI
must emit a Chrome trace document that ``json.loads`` accepts and that
contains real duration events.
"""

import json

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.obs import TraceCollector, write_trace


@pytest.fixture
def busy_cluster():
    """A brokered cluster with one granted sequential job on record."""
    cluster = Cluster(ClusterSpec.uniform(3))
    svc = cluster.start_broker()
    svc.wait_ready()
    svc.submit("n00", ["rsh", "anylinux", "compute", "2.0"], uid="seq")
    cluster.env.run(until=cluster.now + 6.0)
    return cluster


def test_collector_merges_runs_into_one_jsonl(busy_cluster):
    other = Cluster(ClusterSpec.uniform(2))
    other.start_broker()
    other.broker.wait_ready()
    other.env.run(until=other.now + 2.0)

    collector = TraceCollector()
    collector.add_cluster(busy_cluster, label="first")
    collector.add_cluster(other, label="second")
    records = [
        json.loads(line) for line in collector.jsonl().splitlines()
    ]
    assert {r["run"] for r in records} == {"first", "second"}


def test_collector_chrome_keeps_run_groups_apart(busy_cluster):
    collector = TraceCollector()
    collector.add_cluster(busy_cluster, label="a")
    collector.add_cluster(busy_cluster, label="b")
    doc = collector.chrome()
    process_names = [
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    ]
    assert any(name.startswith("a: ") for name in process_names)
    assert any(name.startswith("b: ") for name in process_names)


def test_collector_write_picks_format_by_extension(busy_cluster, tmp_path):
    collector = TraceCollector()
    collector.add_cluster(busy_cluster, label="run")
    jsonl_path = collector.write(str(tmp_path / "out.jsonl"))
    for line in open(jsonl_path).read().splitlines():
        json.loads(line)
    chrome_path = collector.write(str(tmp_path / "out.json"))
    doc = json.load(open(chrome_path))
    assert doc["traceEvents"]


def test_write_trace_single_tracer(busy_cluster, tmp_path):
    svc = busy_cluster.broker
    path = write_trace(
        str(tmp_path / "run.json"), svc.tracer, metrics=svc.metrics
    )
    doc = json.load(open(path))
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_demo_cli_trace_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "demo.json"
    assert main(["demo", "--trace", str(out)]) == 0
    doc = json.load(open(out))
    durations = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert durations, "demo trace has no duration events"
    printed = capsys.readouterr().out
    assert "trace written to" in printed
    assert "== metrics @" in printed


def test_rbtrace_and_rbtop_tools(busy_cluster):
    for tool, path, needle in [
        ("rbtrace", "/home/bob/.rbtrace", "job.submit"),
        ("rbtop", "/home/bob/.rbtop", "broker.grants"),
    ]:
        proc = busy_cluster.run_command("n01", [tool], uid="bob")
        busy_cluster.env.run(until=proc.terminated)
        assert proc.exit_code == 0
        report = busy_cluster.machine("n01").fs.read(path)
        assert needle in report
