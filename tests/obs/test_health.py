"""Tests for the health watchdogs and SLO evaluation (``repro.obs.health``)."""

import pytest

from repro.broker.state import AllocationState
from repro.cluster import Cluster, ClusterSpec
from repro.obs import (
    HealthMonitor,
    HealthReport,
    HealthThresholds,
    evaluate_slos,
)


def _started(machines=4, seed=1):
    cluster = Cluster(ClusterSpec.uniform(machines, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    return cluster, svc


def _strand(svc, host, jobid, now, age):
    """Fabricate an allocation that has been RECLAIMING for ``age`` seconds."""
    allocation = svc.state.allocate(host, jobid=jobid, firm=False, now=now)
    allocation.state = AllocationState.RECLAIMING
    allocation.reclaiming_since = now - age
    return allocation


# -- thresholds --------------------------------------------------------------


def test_thresholds_derive_from_calibration():
    cluster, svc = _started()
    cal = cluster.network.calibration
    monitor = HealthMonitor(svc)
    assert monitor.stuck_after == cal.lease_ttl
    assert monitor.heartbeat_gap == cal.liveness_deadline
    assert monitor.queue_high == max(4, len(svc.managed_hosts))


def test_explicit_thresholds_win():
    _, svc = _started()
    monitor = HealthMonitor(
        svc,
        HealthThresholds(
            check_interval=2.0, stuck_after=1.0, heartbeat_gap=3.0, queue_high=7
        ),
    )
    assert monitor.check_interval == 2.0
    assert monitor.stuck_after == 1.0
    assert monitor.heartbeat_gap == 3.0
    assert monitor.queue_high == 7


# -- watchdogs ---------------------------------------------------------------


def test_healthy_idle_run_flags_nothing():
    cluster, svc = _started()
    monitor = HealthMonitor(svc).start()
    assert monitor.start() is monitor  # idempotent
    cluster.env.run(until=60.0)
    report = monitor.report()
    assert report.checks >= 12  # one per 5s interval plus the final pass
    assert report.healthy
    assert report.stuck_allocations == 0
    assert report.stuck_events == 0
    assert report.heartbeat_gap_events == 0
    assert report.queue_breaches == 0
    assert report.to_dict()["healthy"] is True
    assert "healthy" in report.render()


def test_stuck_allocation_detection_is_edge_triggered():
    cluster, svc = _started()
    cluster.env.run(until=30.0)
    now = cluster.env.now
    ttl = cluster.network.calibration.lease_ttl
    _strand(svc, "n01", jobid=99, now=now, age=2 * ttl)
    monitor = HealthMonitor(svc)
    monitor.check()
    assert monitor.stuck_events == 1
    assert svc.metrics.counter("health.stuck_allocations").value == 1
    monitor.check()
    assert monitor.stuck_events == 1  # still the same stuck host: one event
    # The host recovers, then gets stuck again: that is a fresh anomaly.
    svc.state.release("n01")
    monitor.check()
    _strand(svc, "n01", jobid=100, now=now, age=2 * ttl)
    monitor.check()
    assert monitor.stuck_events == 2
    report = monitor.report()
    assert report.stuck_allocations == 1
    assert report.allocated_hosts == ["n01"]
    assert not report.healthy
    assert "UNHEALTHY" in report.render()


def test_recent_reclaim_is_not_stuck():
    cluster, svc = _started()
    cluster.env.run(until=30.0)
    _strand(svc, "n01", jobid=7, now=cluster.env.now, age=0.5)
    monitor = HealthMonitor(svc)
    monitor.check()
    assert monitor.stuck_events == 0
    # Still allocated at report time, though — the drain check sees it.
    assert monitor.report().stuck_allocations == 1


def test_heartbeat_gap_detection():
    cluster, svc = _started()
    cluster.env.run(until=100.0)
    record = svc.state.machines["n01"]
    assert record.last_seen >= 0.0  # the daemon has been reporting
    record.last_seen = cluster.env.now - 50.0
    monitor = HealthMonitor(svc)
    monitor.check()
    assert monitor.gap_events == 1
    assert monitor.max_heartbeat_gap >= 50.0
    assert svc.metrics.counter("health.heartbeat_gaps").value == 1
    monitor.check()
    assert monitor.gap_events == 1  # edge-triggered, not once per pass
    report = monitor.report()
    assert report.heartbeat_gap_events == 1
    assert report.max_heartbeat_gap >= 50.0


def test_queue_watermark_on_an_overloaded_cluster():
    # Two machines, one usable worker: three long sequential jobs must queue.
    cluster, svc = _started(machines=2)
    monitor = HealthMonitor(
        svc, HealthThresholds(queue_high=0, check_interval=1.0)
    ).start()
    for i in range(3):
        svc.submit("n00", ["rsh", "anylinux", "compute", "40"], uid=f"s{i}")
    cluster.env.run(until=20.0)
    assert monitor.queue_high_watermark >= 1
    assert monitor.queue_breaches >= 1
    assert svc.metrics.counter("health.queue_breaches").value >= 1
    assert monitor.report().queue_high_watermark >= 1


def test_monitor_emits_health_events_into_the_broker_log():
    cluster, svc = _started()
    cluster.env.run(until=100.0)
    _strand(
        svc,
        "n02",
        jobid=5,
        now=cluster.env.now,
        age=3 * cluster.network.calibration.lease_ttl,
    )
    HealthMonitor(svc).check()
    events = svc.events_of("health_stuck_allocation")
    assert len(events) == 1
    assert events[0]["host"] == "n02"


# -- SLO evaluation ----------------------------------------------------------


def _report(**overrides):
    base = dict(time=0.0, checks=1, stuck_allocations=0)
    base.update(overrides)
    return HealthReport(**base)


def test_evaluate_slos_passes_a_clean_run():
    _, svc = _started()
    slo = evaluate_slos(svc, _report())
    assert slo.passed
    assert slo.to_dict()["passed"] is True
    assert "PASS" in slo.render()


def test_evaluate_slos_drained_flag_controls_leak_objective():
    _, svc = _started()
    leaked = _report(stuck_allocations=2, allocated_hosts=["n01", "n02"])
    # Mid-flight: machines held by a live job are not leaks.
    assert evaluate_slos(svc, leaked).passed
    # After a drain they are.
    drained = evaluate_slos(svc, leaked, drained=True)
    assert not drained.passed
    failing = [o.name for o in drained.objectives if not o.ok]
    assert failing == ["stuck_allocations"]


def test_evaluate_slos_flags_stuck_events_and_slow_grants():
    _, svc = _started()
    assert not evaluate_slos(svc, _report(stuck_events=1)).passed
    svc.metrics.histogram("broker.grant_wait").observe(100.0)
    slow = evaluate_slos(svc, _report(), grant_wait_p95=30.0)
    assert not slow.passed
    verdicts = {o.name: o.ok for o in slow.objectives}
    assert verdicts["grant_wait_p95_seconds"] is False
    assert "FAIL" in slow.render()


def test_evaluate_slos_optional_heartbeat_gap_objective():
    _, svc = _started()
    report = _report(max_heartbeat_gap=9.0)
    assert evaluate_slos(svc, report).passed  # not requested: not evaluated
    gated = evaluate_slos(svc, report, max_heartbeat_gap=5.0)
    assert not gated.passed
    assert [o.name for o in gated.objectives if not o.ok] == [
        "max_heartbeat_gap_seconds"
    ]


# -- CLI ---------------------------------------------------------------------


def test_slo_command_runs_and_passes(capsys):
    from repro.__main__ import main

    assert main(["slo", "--machines", "4", "--minutes", "1"]) == 0
    out = capsys.readouterr().out
    assert "== SLO report: PASS ==" in out
    assert "grant_wait_p95_seconds" in out


# -- journal flush-lag watchdog ----------------------------------------------


def _journaled(machines=4, seed=1):
    cluster = Cluster(ClusterSpec.uniform(machines, seed=seed))
    svc = cluster.start_broker(journal=True)
    svc.wait_ready()
    return cluster, svc


def test_journal_lag_threshold_derives_from_calibration():
    cluster, svc = _journaled()
    cal = cluster.network.calibration
    monitor = HealthMonitor(svc)
    assert monitor.journal_lag == 4.0 * cal.journal_flush_interval
    explicit = HealthMonitor(svc, HealthThresholds(journal_lag=9.0))
    assert explicit.journal_lag == 9.0


def test_stalled_disk_trips_the_journal_lag_watchdog():
    cluster, svc = _journaled()
    cluster.env.run(until=10.0)
    monitor = HealthMonitor(svc)
    monitor.check()
    assert monitor.journal_lag_events == 0

    svc.journal.stall(60.0)
    svc.journal.note_lease("n01", 99.0)  # something now waits for the disk
    cluster.env.run(until=cluster.now + 10.0)
    monitor.check()
    assert monitor.journal_lag_events == 1
    assert monitor.max_journal_lag >= 10.0
    assert svc.metrics.counter("health.journal_lag").value == 1
    events = svc.events_of("health_journal_lag")
    assert events and events[-1]["pending_ops"] >= 1
    # Edge-triggered: the same ongoing stall is one anomaly, not one per
    # check.
    monitor.check()
    assert monitor.journal_lag_events == 1

    report = monitor.report()
    assert report.journal_lag_events == 1
    assert report.max_journal_lag >= 10.0
    assert "journal lag: 1 events" in report.render()
    assert report.to_dict()["journal_lag_events"] == 1


def test_journal_lag_watchdog_is_silent_without_a_journal():
    cluster, svc = _started()
    monitor = HealthMonitor(svc).start()
    cluster.env.run(until=30.0)
    report = monitor.report()
    assert report.journal_lag_events == 0
    assert "journal lag" not in report.render()
