"""Unit tests for the span tracer and the metrics registry."""

import pytest

from repro.obs import (
    TRACE_ENVIRON_KEY,
    MetricsRegistry,
    Tracer,
    context_from_environ,
    format_context,
    parse_context,
)
from repro.sim import Environment


# -- context propagation forms ------------------------------------------------


def test_context_roundtrips_through_environ_form():
    ctx = {"trace_id": 7, "span_id": 42}
    assert parse_context(format_context(ctx)) == ctx


@pytest.mark.parametrize("text", [None, "", "junk", "1:2:3", "a:b"])
def test_parse_context_rejects_garbage(text):
    assert parse_context(text) is None


def test_context_from_environ():
    assert context_from_environ({}) is None
    assert context_from_environ({TRACE_ENVIRON_KEY: "3:9"}) == {
        "trace_id": 3,
        "span_id": 9,
    }


# -- spans ------------------------------------------------------------------


def test_root_spans_get_fresh_trace_ids():
    tracer = Tracer(Environment())
    a = tracer.start("a")
    b = tracer.start("b")
    assert a.trace_id != b.trace_id
    assert a.parent_id is None and b.parent_id is None


def test_children_share_the_trace_whatever_the_parent_form():
    tracer = Tracer(Environment())
    root = tracer.start("root")
    by_span = tracer.start("c1", parent=root)
    by_ctx = tracer.start("c2", parent=root.context)
    by_str = tracer.start("c3", parent=format_context(root.context))
    for child in (by_span, by_ctx, by_str):
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
    assert tracer.children_of(root) == [by_span, by_ctx, by_str]


def test_span_times_follow_the_simulated_clock():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.start("op")
    env.run(until=2.5)
    assert span.duration == pytest.approx(2.5)  # still open: clamps to now
    span.end(code=0)
    env.run(until=4.0)
    assert span.finished
    assert span.ended_at == pytest.approx(2.5)
    assert span.duration == pytest.approx(2.5)
    assert span.attrs["code"] == 0


def test_span_end_is_idempotent():
    env = Environment()
    tracer = Tracer(env)
    span = tracer.start("op")
    span.end()
    first_end = span.ended_at
    env.run(until=1.0)
    span.end(extra=1)
    assert span.ended_at == first_end
    assert span.attrs["extra"] == 1  # attrs still merge


def test_span_environ_fragment_points_back_at_the_span():
    tracer = Tracer(Environment())
    span = tracer.start("op")
    child = tracer.start("child", parent=span.environ()[TRACE_ENVIRON_KEY])
    assert child.parent_id == span.span_id


# -- metrics ----------------------------------------------------------------


def test_counter_accumulates_and_samples():
    env = Environment()
    registry = MetricsRegistry(env)
    grants = registry.counter("grants")
    grants.inc()
    env.run(until=1.0)
    grants.inc(2)
    assert grants.value == 3
    assert grants.samples == [(0.0, 1), (1.0, 3)]
    with pytest.raises(ValueError):
        grants.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry(Environment())
    pending = registry.gauge("pending")
    pending.inc()
    pending.inc()
    pending.dec()
    assert pending.value == 1
    pending.set(5)
    assert pending.value == 5


def test_histogram_statistics():
    registry = MetricsRegistry(Environment())
    wait = registry.histogram("wait")
    for value in [1.0, 2.0, 3.0, 4.0]:
        wait.observe(value)
    assert wait.count == 4
    assert wait.mean() == pytest.approx(2.5)
    assert wait.percentile(0.5) in (2.0, 3.0)
    assert wait.percentile(1.0) == 4.0
    with pytest.raises(ValueError):
        wait.percentile(2.0)


def test_registry_is_get_or_create_and_type_checked():
    registry = MetricsRegistry(Environment())
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")  # same name, different type
    names = [m.name for m in registry.all_metrics()]
    assert names == sorted(names)


def test_registry_render_mentions_every_metric():
    registry = MetricsRegistry(Environment())
    registry.counter("a.count").inc()
    registry.histogram("b.hist").observe(1.0)
    registry.gauge("c.gauge").set(2)
    text = registry.render()
    for name in ("a.count", "b.hist", "c.gauge"):
        assert name in text
