"""Unit tests for the bounded telemetry primitives and registry modes."""

import pytest

from repro.obs import (
    HistogramDigest,
    MetricsRegistry,
    SeriesBuffer,
    SpanPhaseFolder,
    Tracer,
    phase_of_span,
    windowed_rate,
)
from repro.obs.metrics import METRICS_MODE_ENVIRON_KEY
from repro.sim import Environment


# -- histogram digests -------------------------------------------------------


def test_digest_aggregates_are_exact():
    digest = HistogramDigest()
    for value in [0.5, 1.5, 2.5, 10.0]:
        digest.observe(value)
    assert digest.count == 4
    assert digest.total == pytest.approx(14.5)
    assert digest.mean() == pytest.approx(14.5 / 4)
    assert digest.min == 0.5
    assert digest.max == 10.0


def test_digest_quantiles_estimate_within_bin_resolution():
    digest = HistogramDigest()
    values = [float(i) for i in range(1, 101)]
    for value in values:
        digest.observe(value)
    # Log-spaced bins: the estimate lands in the right bin, so it is within
    # one bin width (a factor of 10**(1/8) ~ 1.33) of the exact quantile.
    assert digest.quantile(0.5) == pytest.approx(50.0, rel=0.35)
    assert digest.quantile(0.95) == pytest.approx(95.0, rel=0.35)
    # The extremes clamp to the observed min/max (never outside them).
    assert 1.0 <= digest.quantile(0.0) <= 1.0 * 10 ** 0.125
    assert 100.0 / 10 ** 0.125 <= digest.quantile(1.0) <= 100.0


def test_digest_underflow_overflow_and_empty():
    digest = HistogramDigest(lo=1e-3, hi=1e3)
    assert digest.quantile(0.5) == 0.0  # empty
    digest.observe(0.0)  # below lo (and non-positive): underflow bin
    digest.observe(1e9)  # above hi: overflow bin
    assert digest.count == 2
    assert digest.quantile(0.0) == 0.0
    assert digest.quantile(1.0) == 1e9
    with pytest.raises(ValueError):
        digest.quantile(1.5)


def test_digest_merge_matches_single_digest():
    whole = HistogramDigest()
    left, right = HistogramDigest(), HistogramDigest()
    for i in range(1, 41):
        value = i / 4.0
        whole.observe(value)
        (left if i % 2 else right).observe(value)
    left.merge(right)
    assert left.count == whole.count
    assert left.total == pytest.approx(whole.total)
    assert left.min == whole.min and left.max == whole.max
    assert left._bins == whole._bins
    assert left.quantile(0.5) == whole.quantile(0.5)


def test_digest_merge_rejects_mismatched_bounds():
    with pytest.raises(ValueError):
        HistogramDigest().merge(HistogramDigest(lo=1e-3))


def test_digest_rejects_bad_bounds():
    with pytest.raises(ValueError):
        HistogramDigest(lo=2.0, hi=1.0)
    with pytest.raises(ValueError):
        HistogramDigest(bins_per_decade=0)


# -- series buffers ----------------------------------------------------------


def test_series_buffer_keeps_last_write_per_interval():
    series = SeriesBuffer(resolution=1.0, capacity=16)
    series.add(0.1, 1.0)
    series.add(0.9, 2.0)  # same interval: replaces
    series.add(1.5, 3.0)
    assert series.samples() == [(0.9, 2.0), (1.5, 3.0)]
    assert series.last() == (1.5, 3.0)
    assert len(series) == 2
    assert series.dropped == 0


def test_series_buffer_ring_caps_memory():
    series = SeriesBuffer(resolution=1.0, capacity=4)
    for i in range(10):
        series.add(float(i), float(i))
    assert len(series) == 4
    assert series.dropped == 6
    assert series.samples() == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]


def test_series_buffer_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SeriesBuffer(resolution=0.0)
    with pytest.raises(ValueError):
        SeriesBuffer(capacity=0)
    assert SeriesBuffer().last() is None


# -- windowed rates ----------------------------------------------------------


def test_windowed_rate_uses_last_sample_before_the_window():
    samples = [(0.0, 0.0), (10.0, 5.0), (50.0, 20.0)]
    assert windowed_rate(samples, now=60.0, window=20.0) == pytest.approx(
        (20.0 - 5.0) / 20.0
    )
    # Series starts inside the window: baseline is the counter's origin.
    assert windowed_rate(samples, now=60.0, window=120.0) == pytest.approx(
        20.0 / 120.0
    )
    assert windowed_rate([], now=60.0) == 0.0
    with pytest.raises(ValueError):
        windowed_rate(samples, now=60.0, window=0.0)


# -- span phases -------------------------------------------------------------


def test_phase_of_span_vocabulary():
    assert phase_of_span("app.register") == "submit"
    assert phase_of_span("broker.request") == "decision"
    assert phase_of_span("rshprime") == "phase1"
    assert phase_of_span("module.pvm_grow") == "phase2"
    assert phase_of_span("app.machine_wait") == "grant"
    assert phase_of_span("calypso.worker") is None


def test_span_phase_folder_folds_online():
    env = Environment()
    tracer = Tracer(env)
    folder = SpanPhaseFolder(tracer)
    span = tracer.start("broker.request")
    env.run(until=2.0)
    span.end()
    tracer.start("calypso.worker").end()  # no phase: ignored
    open_span = tracer.start("broker.request")  # never ends: never folds
    assert folder.spans_folded == 1
    summary = folder.summary()
    assert list(summary) == ["decision"]
    assert summary["decision"]["count"] == 1
    assert summary["decision"]["mean"] == pytest.approx(2.0)
    assert not open_span.finished


def test_span_phase_folder_never_sees_unsampled_spans():
    env = Environment()
    tracer = Tracer(env, sample=0.0)
    folder = SpanPhaseFolder(tracer)
    tracer.start("broker.request").end()
    assert folder.spans_folded == 0


# -- registry modes ----------------------------------------------------------


def test_bounded_registry_aggregates_series_and_digests():
    env = Environment()
    registry = MetricsRegistry(
        env, mode="bounded", series_resolution=1.0, series_capacity=8
    )
    grants = registry.counter("grants")
    for _ in range(5):
        grants.inc()
    # All five updates landed in one interval: one retained point, last wins.
    assert grants.value == 5
    assert grants.samples == [(0.0, 5.0)]
    wait = registry.histogram("wait")
    for value in [1.0, 2.0, 3.0, 4.0]:
        wait.observe(value)
    assert wait.count == 4
    assert wait.total == pytest.approx(10.0)
    assert wait.digest is not None
    assert wait.percentile(1.0) == pytest.approx(4.0, rel=0.35)
    assert wait.observations == []  # no unbounded retention


def test_bounded_registry_memory_is_flat():
    env = Environment()
    registry = MetricsRegistry(env, mode="bounded", series_capacity=16)
    gauge = registry.gauge("depth")
    for i in range(1000):
        env.run(until=float(i + 1))
        gauge.set(i)
    assert registry.series_points() <= 16
    assert registry.self_stats()["updates"] == 1000


def test_off_registry_keeps_values_only():
    registry = MetricsRegistry(Environment(), mode="off")
    grants = registry.counter("grants")
    grants.inc(3)
    assert grants.value == 3
    assert grants.samples == []
    wait = registry.histogram("wait")
    wait.observe(2.0)
    assert wait.count == 1 and wait.total == 2.0
    assert wait.percentile(0.95) == 0.0
    assert registry.series_points() == 0


def test_registry_mode_from_environment(monkeypatch):
    monkeypatch.setenv(METRICS_MODE_ENVIRON_KEY, "bounded")
    assert MetricsRegistry(Environment()).mode == "bounded"
    monkeypatch.delenv(METRICS_MODE_ENVIRON_KEY)
    assert MetricsRegistry(Environment()).mode == "exact"
    with pytest.raises(ValueError):
        MetricsRegistry(Environment(), mode="sometimes")


def test_exact_mode_snapshot_unchanged_by_mode_machinery():
    # The exact-mode registry is the determinism-gated default: samples are
    # plain (time, value) lists and percentiles are nearest-rank exact.
    env = Environment()
    registry = MetricsRegistry(env)
    counter = registry.counter("grants")
    counter.inc()
    env.run(until=1.0)
    counter.inc(2)
    assert counter.samples == [(0.0, 1), (1.0, 3)]
    assert registry.self_stats()["mode"] == "exact"
    assert registry.series_points() == 2
