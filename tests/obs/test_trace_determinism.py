"""Satellite: identical seeds must produce byte-identical trace exports.

Span and trace ids come from a per-tracer ``itertools.count`` and all
timestamps from the deterministic simulated clock, so two runs of the same
seeded scenario must serialise to the same JSON Lines, byte for byte.
"""

import json

from repro.cluster import Cluster, ClusterSpec
from repro.obs import to_jsonl


def _traced_run(seed):
    """A small brokered workload; returns its JSONL trace export."""
    cluster = Cluster(ClusterSpec.uniform(4, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    cluster.env.run(until=cluster.now + 3.0)
    add = cluster.run_command("n00", ["pvm", "add", "anylinux"], uid="pat")
    cluster.env.run(until=add.terminated)
    cluster.env.run(until=cluster.now + 8.0)
    svc.submit("n00", ["rsh", "anylinux", "compute", "2.0"], uid="seq")
    cluster.env.run(until=cluster.now + 5.0)
    return to_jsonl(cluster.network.tracer.spans, now=cluster.now)


def test_same_seed_gives_byte_identical_jsonl():
    first = _traced_run(seed=3)
    second = _traced_run(seed=3)
    assert first.encode() == second.encode()
    # Sanity: the export is non-trivial and parseable.
    records = [json.loads(line) for line in first.splitlines()]
    assert len(records) > 10


def test_different_seed_still_parses():
    other = _traced_run(seed=4)
    for line in other.splitlines():
        json.loads(line)
