"""Acceptance: a PVM ``anylinux`` grow yields one connected trace tree.

The scenario mirrors ``tests/systems/test_pvm.py`` — a ``pvm`` module job,
then ``pvm add anylinux`` — and asserts the whole allocation path (rsh' ->
broker grant -> pvm_grow module -> slave pvmd join) lands in the *same*
trace, causally linked back to the ``job.submit`` root.
"""

import json

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.obs import (
    format_trace,
    is_connected,
    phase_durations,
    to_chrome,
    to_jsonl,
    trace_root,
)

#: Span names the grow scenario must produce inside the submit's trace.
EXPECTED_SPANS = {
    "job.submit",
    "app.run",
    "app.register",
    "broker.job",
    "rshprime",
    "app.rsh_request",
    "app.machine_wait",
    "broker.request",
    "module.pvm_grow",
    "pvm.add_host",
}


@pytest.fixture(scope="module")
def grown():
    """One brokered cluster after a completed anylinux grow."""
    cluster = Cluster(ClusterSpec.uniform(5))
    svc = cluster.start_broker()
    svc.wait_ready()
    job = svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    cluster.env.run(until=cluster.now + 3.0)
    add = cluster.run_command("n00", ["pvm", "add", "anylinux"], uid="pat")
    cluster.env.run(until=add.terminated)
    cluster.env.run(until=cluster.now + 8.0)
    cluster.assert_no_crashes()
    return cluster, svc, job


def test_trace_is_connected_and_complete(grown):
    cluster, svc, job = grown
    tid = job.span.trace_id
    assert trace_root(svc.tracer, tid) is job.span
    assert is_connected(svc.tracer, tid)
    names = {span.name for span in svc.tracer.trace(tid)}
    assert EXPECTED_SPANS <= names


def test_granted_request_carries_host_and_wait(grown):
    cluster, svc, job = grown
    granted = [
        span
        for span in svc.tracer.trace(job.span.trace_id)
        if span.name == "broker.request" and span.attrs.get("host")
    ]
    assert granted, "no granted broker.request span in the trace"
    span = granted[0]
    assert span.finished
    assert span.attrs["outcome"] == "granted"
    assert span.duration == pytest.approx(span.attrs["waited"])


def test_phase_durations_match_elapsed_time(grown):
    cluster, svc, job = grown
    tid = job.span.trace_id
    phases = phase_durations(svc.tracer, tid)
    for name in ("module.pvm_grow", "pvm.add_host", "rshprime"):
        assert 0.0 < phases[name] <= cluster.now
    # Spans nest causally: every child starts no earlier than its parent.
    spans = svc.tracer.trace(tid)
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.parent_id is not None:
            assert span.started_at >= by_id[span.parent_id].started_at - 1e-9
        if span.finished:
            assert span.started_at <= span.ended_at <= cluster.now


def test_broker_metrics_recorded_the_grant(grown):
    cluster, svc, job = grown
    assert svc.metrics.counter("broker.submits").value >= 1
    assert svc.metrics.counter("broker.grants").value >= 1
    wait = svc.metrics.histogram("broker.grant_wait")
    assert wait.count >= 1


def test_jsonl_export_of_the_run_parses(grown):
    cluster, svc, job = grown
    text = to_jsonl(svc.tracer.spans, now=cluster.now)
    records = [json.loads(line) for line in text.splitlines()]
    assert {r["span_id"] for r in records} == {
        s.span_id for s in svc.tracer.spans
    }
    roots = [r for r in records if r["parent_id"] is None]
    assert any(r["name"] == "job.submit" for r in roots)


def test_chrome_export_of_the_run_is_valid(grown):
    cluster, svc, job = grown
    doc = to_chrome(svc.tracer.spans, metrics=svc.metrics, now=cluster.now)
    json.dumps(doc)  # serialisable
    kinds = {event["ph"] for event in doc["traceEvents"]}
    assert {"X", "M", "C"} <= kinds
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "module.pvm_grow" in names


def test_format_trace_renders_the_tree(grown):
    cluster, svc, job = grown
    text = format_trace(svc.tracer, job.span.trace_id)
    assert "job.submit" in text
    assert "module.pvm_grow" in text
