"""Tracer query indexes must answer exactly like a full-list scan."""

from repro.sim.environment import Environment
from repro.obs.spans import Tracer


def _build(tracer):
    """A small forest: two traces, nested children, repeated names."""
    env = tracer.env
    a = tracer.start("job.submit", host="n00")
    b = tracer.start("app.run", parent=a)
    c = tracer.start("app.rsh_request", parent=b)
    d = tracer.start("app.rsh_request", parent=b)
    e = tracer.start("job.submit", host="n01")
    f = tracer.start("app.run", parent=e.context)
    for span in (c, d, f):
        span.end()
    return [a, b, c, d, e, f]


def test_indexes_match_naive_scans():
    env = Environment()
    tracer = Tracer(env)
    spans = _build(tracer)

    names = {span.name for span in spans}
    for name in names | {"missing"}:
        assert tracer.spans_named(name) == [
            s for s in tracer.spans if s.name == name
        ]
    for trace_id in {s.trace_id for s in spans} | {999}:
        assert tracer.trace(trace_id) == [
            s for s in tracer.spans if s.trace_id == trace_id
        ]
    assert tracer.roots() == [s for s in tracer.spans if s.parent_id is None]
    for span in spans:
        assert tracer.children_of(span) == [
            s for s in tracer.spans if s.parent_id == span.span_id
        ]


def test_index_queries_return_copies():
    """Mutating a query result must not corrupt the index."""
    env = Environment()
    tracer = Tracer(env)
    _build(tracer)
    got = tracer.spans_named("app.run")
    got.clear()
    assert len(tracer.spans_named("app.run")) == 2
    roots = tracer.roots()
    roots.pop()
    assert len(tracer.roots()) == 2


def test_lazy_attr_dict_only_allocated_on_touch():
    env = Environment()
    tracer = Tracer(env)
    bare = tracer.start("bare")
    assert bare._attrs is None  # no dict until someone asks
    assert bare.attrs == {}
    assert bare._attrs == {}
    rich = tracer.start("rich", host="n03")
    assert rich._attrs == {"host": "n03"}
    rich.set(jobid=7)
    assert rich.attrs == {"host": "n03", "jobid": 7}
