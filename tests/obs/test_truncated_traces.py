"""Trace queries on damaged trees, and trace-sampling determinism.

A broker crash leaves spans open forever (crash-truncated traces); a
context that points at a span the tracer never recorded leaves orphans
(disconnected traces).  ``phase_durations`` and ``grant_times`` must stay
well-defined on both — post-mortems run on exactly these traces.

Sampling is head-based per trace and seeded: the keep/drop decision must
never change simulated behaviour, and the kept subset must be the same on
every run of the same seed.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.obs import (
    TRACE_SAMPLE_ENVIRON_KEY,
    Tracer,
    format_trace,
    grant_times,
    is_connected,
    phase_durations,
    to_jsonl,
    trace_root,
)
from repro.sim import Environment


# -- crash-truncated traces --------------------------------------------------


def _truncated_trace(env, tracer):
    """A job trace cut off mid-flight: the reclaim span never ends."""
    root = tracer.start("job.submit", jobid=1)
    request = tracer.start("broker.request", parent=root, jobid=1)
    env.run(until=2.0)
    request.end(host="n01")
    reclaim = tracer.start("broker.reclaim", parent=root, host="n01")
    env.run(until=5.0)
    assert not reclaim.finished  # the crash point
    return root


def test_phase_durations_excludes_open_spans():
    env = Environment()
    tracer = Tracer(env)
    root = _truncated_trace(env, tracer)
    root.end()
    durations = phase_durations(tracer, root.trace_id)
    # The open reclaim contributes nothing; finished spans sum normally.
    assert "broker.reclaim" not in durations
    assert durations["broker.request"] == pytest.approx(2.0)
    assert durations["job.submit"] == pytest.approx(5.0)


def test_phase_durations_of_a_fully_open_trace_is_empty():
    # Everything in flight at the crash: nothing ever finished.
    env = Environment()
    tracer = Tracer(env)
    root = tracer.start("job.submit", jobid=2)
    tracer.start("broker.request", parent=root, jobid=2)
    env.run(until=4.0)
    assert phase_durations(tracer, root.trace_id) == {}


def test_grant_times_on_a_crash_truncated_trace():
    env = Environment()
    tracer = Tracer(env)
    root = tracer.start("job.submit", jobid=9)
    granted = tracer.start("broker.request", parent=root, jobid=9)
    env.run(until=3.0)
    granted.end(host="n02")
    # A request in flight at the crash, and a denial (no host): neither is
    # a grant, and neither may poison the timeline.
    tracer.start("broker.request", parent=root, jobid=9)
    tracer.start("broker.request", parent=root, jobid=9).end()
    assert grant_times(tracer, jobid=9) == [3.0]
    assert grant_times(tracer, jobid=9, since=3.5) == []


# -- disconnected traces -----------------------------------------------------


def test_orphan_spans_make_a_trace_disconnected():
    env = Environment()
    tracer = Tracer(env)
    root = tracer.start("job.submit", jobid=4)
    # A context that survived its parent (e.g. inherited through RB_TRACE
    # across a broker restart): the parent id was never recorded here.
    orphan_context = {"trace_id": root.trace_id, "span_id": 424242}
    orphan = tracer.start("broker.request", parent=orphan_context, jobid=4)
    env.run(until=1.5)
    orphan.end(host="n03")
    root.end()
    assert not is_connected(tracer, root.trace_id)
    # Queries still answer from what was recorded.
    assert grant_times(tracer, jobid=4) == [1.5]
    durations = phase_durations(tracer, root.trace_id)
    assert durations["broker.request"] == pytest.approx(1.5)
    # The tree renderers only walk from roots: the orphan is simply absent,
    # never a crash or an infinite walk.
    outline = format_trace(tracer, root.trace_id)
    assert "job.submit" in outline
    assert "broker.request" not in outline


def test_trace_root_of_a_rootless_trace_is_none():
    env = Environment()
    tracer = Tracer(env)
    anchor = tracer.start("job.submit")  # allocates trace_id 1
    orphan = tracer.start(
        "broker.request", parent={"trace_id": 99, "span_id": 7}
    )
    orphan.end()
    assert trace_root(tracer, orphan.trace_id) is None
    assert trace_root(tracer, anchor.trace_id) is anchor
    assert not is_connected(tracer, orphan.trace_id)


def test_connected_trace_stays_connected():
    env = Environment()
    tracer = Tracer(env)
    root = _truncated_trace(env, tracer)
    assert is_connected(tracer, root.trace_id)


# -- sampling determinism ----------------------------------------------------


def _traced_run(seed):
    """A small brokered workload; returns (cluster, JSONL trace export)."""
    cluster = Cluster(ClusterSpec.uniform(4, seed=seed))
    svc = cluster.start_broker()
    svc.wait_ready()
    svc.submit("n00", ["rsh", "anylinux", "compute", "2.0"], uid="seq")
    cluster.env.run(until=cluster.now + 8.0)
    svc.submit("n00", ["rsh", "anylinux", "compute", "1.0"], uid="seq")
    cluster.env.run(until=cluster.now + 5.0)
    return cluster, to_jsonl(cluster.network.tracer.spans, now=cluster.now)


def test_sampling_disabled_matches_unset_byte_for_byte(monkeypatch):
    _, baseline = _traced_run(seed=5)
    monkeypatch.setenv(TRACE_SAMPLE_ENVIRON_KEY, "1.0")
    _, explicit = _traced_run(seed=5)
    assert explicit.encode() == baseline.encode()


def test_sampled_out_run_keeps_simulation_identical(monkeypatch):
    full, _ = _traced_run(seed=5)
    monkeypatch.setenv(TRACE_SAMPLE_ENVIRON_KEY, "0.0")
    dark, export = _traced_run(seed=5)
    # Zero spans kept, but every span id was still drawn...
    tracer = dark.network.tracer
    assert export == ""
    assert tracer.spans == []
    assert tracer.spans_started > 0
    assert tracer.spans_sampled_out == tracer.spans_started
    # ...and the simulation itself did not notice: the metrics plane (which
    # sampling never touches) recorded the identical grant history.
    grants = "broker.grants"
    assert (
        dark.broker.metrics.counter(grants).samples
        == full.broker.metrics.counter(grants).samples
    )


def test_partial_sampling_is_a_deterministic_subset(monkeypatch):
    def keyset(cluster):
        return {
            (s.trace_id, s.span_id, s.name)
            for s in cluster.network.tracer.spans
        }

    full_cluster, _ = _traced_run(seed=5)
    everything = keyset(full_cluster)
    monkeypatch.setenv(TRACE_SAMPLE_ENVIRON_KEY, "0.5")
    first_cluster, first = _traced_run(seed=5)
    _, second = _traced_run(seed=5)
    assert first.encode() == second.encode()
    kept = keyset(first_cluster)
    assert kept <= everything
    assert kept != everything  # some trace was actually dropped
    assert kept  # ...and some trace was actually kept
    # Whole trees are kept or dropped: no kept span has a dropped ancestor.
    kept_traces = {trace_id for trace_id, _sid, _name in kept}
    for trace_id in kept_traces:
        assert is_connected(first_cluster.network.tracer, trace_id)
