"""Unit tests for the per-machine filesystem."""

import pytest

from repro.os.filesystem import FileNotFound, Filesystem


@pytest.fixture
def fs():
    return Filesystem()


def test_write_read(fs):
    fs.write("/a", "hello")
    assert fs.read("/a") == "hello"


def test_write_truncates(fs):
    fs.write("/a", "one")
    fs.write("/a", "two")
    assert fs.read("/a") == "two"


def test_append_creates_and_extends(fs):
    fs.append("/a", "x\n")
    fs.append("/a", "y\n")
    assert fs.read("/a") == "x\ny\n"


def test_read_missing_raises(fs):
    with pytest.raises(FileNotFound):
        fs.read("/nope")


def test_read_lines_skips_blanks(fs):
    fs.write("/h", "n01\n\n  n02  \n\n")
    assert fs.read_lines("/h") == ["n01", "n02"]


def test_unlink_is_idempotent(fs):
    fs.write("/a", "x")
    fs.unlink("/a")
    fs.unlink("/a")
    assert not fs.exists("/a")


def test_listdir_sorted(fs):
    fs.write("/b", "")
    fs.write("/a", "")
    assert fs.listdir() == ["/a", "/b"]


def test_home_expansion_via_process():
    from repro.cluster.network import Network
    from repro.os import Machine, OSProcess
    from repro.os.programs import ProgramDirectory
    from repro.sim import Environment

    env = Environment()
    network = Network(env)
    machine = Machine(env, "m")
    network.add_machine(machine)
    directory = ProgramDirectory("d")

    @directory.register("p")
    def p(proc):
        proc.write_file("~/f", "1")
        proc.append_file("$HOME/f", "2")
        assert proc.read_file("~/f") == "12"
        assert proc.file_exists("$HOME/f")
        proc.unlink_file("~/f")
        assert not proc.file_exists("~/f")
        yield proc.sleep(0)
        return 0

    machine.path = [directory]
    proc = OSProcess(machine, ["p"], uid="kim", environ={"HOME": "/home/kim"})
    env.run()
    assert proc.exit_code == 0
