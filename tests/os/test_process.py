"""Unit tests for simulated OS processes: lifecycle, signals, environment."""

import pytest

from repro.cluster.network import Network
from repro.os import (
    SIGKILL,
    SIGTERM,
    Machine,
    NoSuchProgram,
    OSProcess,
    ProcessStatus,
)
from repro.os.process import PermissionError_
from repro.os.programs import ProgramDirectory
from repro.sim import Environment, Interrupt


@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    machine = Machine(env, "host0")
    network.add_machine(machine)
    directory = ProgramDirectory("system")
    machine.path = [directory]
    return env, machine, directory


def start(machine, argv, uid="user", **kw):
    return OSProcess(machine, argv, uid=uid, environ={"HOME": f"/home/{uid}"}, **kw)


def test_simple_program_exit_zero(rig):
    env, machine, directory = rig

    @directory.register("hello")
    def hello(proc):
        yield proc.sleep(1.0)
        return 0

    proc = start(machine, ["hello"])
    env.run()
    assert proc.exit_code == 0
    assert proc.status is ProcessStatus.EXITED
    assert not proc.is_alive


def test_exit_code_from_return_value(rig):
    env, machine, directory = rig

    @directory.register("fail")
    def fail(proc):
        yield proc.sleep(0.1)
        return 3

    proc = start(machine, ["fail"])
    env.run()
    assert proc.exit_code == 3


def test_startup_delay_applies(rig):
    env, machine, directory = rig
    times = {}

    @directory.register("t")
    def t(proc):
        times["start"] = proc.env.now
        yield proc.sleep(0)

    start(machine, ["t"], startup_delay=0.5)
    env.run()
    assert times["start"] == pytest.approx(0.5)


def test_unknown_program_raises(rig):
    env, machine, directory = rig
    with pytest.raises(NoSuchProgram):
        start(machine, ["no-such-binary"])


def test_process_registered_then_removed_from_table(rig):
    env, machine, directory = rig

    @directory.register("p")
    def p(proc):
        yield proc.sleep(2.0)

    proc = start(machine, ["p"])
    assert machine.procs[proc.pid] is proc
    env.run()
    assert proc.pid not in machine.procs


def test_spawn_inherits_environment_copy(rig):
    env, machine, directory = rig
    seen = {}

    @directory.register("child")
    def child(proc):
        seen["env"] = dict(proc.environ)
        seen["uid"] = proc.uid
        yield proc.sleep(0)

    @directory.register("parent")
    def parent(proc):
        proc.environ["RB_APP_PORT"] = "40001"
        kid = proc.spawn(["child"])
        yield proc.wait(kid)
        # Mutating the child env must not leak back.
        assert "CHILD_ONLY" not in proc.environ

    p = start(machine, ["parent"], uid="alice")
    env.run()
    assert seen["env"]["RB_APP_PORT"] == "40001"
    assert seen["env"]["HOME"] == "/home/alice"
    assert seen["uid"] == "alice"
    assert p.exit_code == 0


def test_spawn_without_inheritance(rig):
    env, machine, directory = rig
    seen = {}

    @directory.register("child")
    def child(proc):
        seen["env"] = dict(proc.environ)
        yield proc.sleep(0)

    @directory.register("parent")
    def parent(proc):
        proc.environ["SECRET"] = "x"
        kid = proc.spawn(["child"], inherit_env=False, environ={"A": "1"})
        yield proc.wait(kid)

    start(machine, ["parent"])
    env.run()
    assert seen["env"] == {"A": "1"}


def test_wait_returns_child_exit_code(rig):
    env, machine, directory = rig
    result = {}

    @directory.register("child")
    def child(proc):
        yield proc.sleep(1.0)
        return 7

    @directory.register("parent")
    def parent(proc):
        kid = proc.spawn(["child"])
        result["code"] = yield proc.wait(kid)

    start(machine, ["parent"])
    env.run()
    assert result["code"] == 7


def test_sigterm_uncaught_kills_with_negative_code(rig):
    env, machine, directory = rig

    @directory.register("victim")
    def victim(proc):
        yield proc.sleep(100.0)

    proc = start(machine, ["victim"])

    def killer():
        yield env.timeout(1.0)
        proc.signal(SIGTERM)

    env.process(killer())
    death_time = {}
    proc.terminated.add_callback(lambda ev: death_time.setdefault("t", env.now))
    env.run()
    assert proc.exit_code == -15
    assert proc.status is ProcessStatus.KILLED
    assert death_time["t"] == pytest.approx(1.0)


def test_sigterm_caught_allows_cleanup(rig):
    env, machine, directory = rig
    log = []

    @directory.register("graceful")
    def graceful(proc):
        try:
            yield proc.sleep(100.0)
        except Interrupt as intr:
            log.append(str(intr.cause))
            yield proc.sleep(0.5)  # cleanup work
            return 0

    proc = start(machine, ["graceful"])

    def killer():
        yield env.timeout(1.0)
        proc.signal(SIGTERM)

    env.process(killer())
    death_time = {}
    proc.terminated.add_callback(lambda ev: death_time.setdefault("t", env.now))
    env.run()
    assert log == ["SIGTERM"]
    assert proc.exit_code == 0
    assert death_time["t"] == pytest.approx(1.5)


def test_sigkill_is_immediate_and_uncatchable(rig):
    env, machine, directory = rig

    @directory.register("stubborn")
    def stubborn(proc):
        while True:
            try:
                yield proc.sleep(10.0)
            except Interrupt:
                pass  # ignores everything

    proc = start(machine, ["stubborn"])

    def killer():
        yield env.timeout(1.0)
        proc.signal(SIGKILL)

    env.process(killer())
    env.run(until=50.0)
    assert proc.exit_code == -9
    assert proc.status is ProcessStatus.KILLED


def test_sigterm_during_startup_terminates_cleanly(rig):
    """A signal arriving while the process is still "exec-ing" (inside its
    startup delay, before the body installed any handler) terminates it with
    the conventional exit code — it must not count as a crash."""
    env, machine, directory = rig
    ran = {}

    @directory.register("t")
    def t(proc):
        ran["body"] = True
        yield proc.sleep(1.0)

    proc = start(machine, ["t"], startup_delay=1.0)

    def killer():
        yield env.timeout(0.5)
        proc.signal(SIGTERM)

    env.process(killer())
    env.run()
    assert ran == {}  # the body never started
    assert proc.status is ProcessStatus.KILLED
    assert proc.exit_code == -int(SIGTERM)
    assert machine.network.crashed == []


def test_signal_cross_uid_denied(rig):
    env, machine, directory = rig

    @directory.register("victim")
    def victim(proc):
        yield proc.sleep(100.0)

    @directory.register("attacker")
    def attacker(proc):
        yield proc.sleep(1.0)

    v = start(machine, ["victim"], uid="alice")
    a = start(machine, ["attacker"], uid="mallory")
    with pytest.raises(PermissionError_):
        v.signal(SIGTERM, sender=a)
    assert v.is_alive


def test_signal_same_uid_allowed(rig):
    env, machine, directory = rig

    @directory.register("victim")
    def victim(proc):
        yield proc.sleep(100.0)

    @directory.register("killer")
    def killer(proc):
        yield proc.sleep(0)

    v = start(machine, ["victim"], uid="alice")
    k = start(machine, ["killer"], uid="alice")
    assert v.signal(SIGTERM, sender=k) is True


def test_signal_dead_process_returns_false(rig):
    env, machine, directory = rig

    @directory.register("quick")
    def quick(proc):
        yield proc.sleep(0.1)

    proc = start(machine, ["quick"])
    env.run()
    assert proc.signal(SIGTERM) is False


def test_kill_tree_reaches_descendants(rig):
    env, machine, directory = rig

    @directory.register("leaf")
    def leaf(proc):
        yield proc.sleep(1000.0)

    @directory.register("mid")
    def mid(proc):
        proc.spawn(["leaf"])
        yield proc.sleep(1000.0)

    @directory.register("top")
    def top(proc):
        proc.spawn(["mid"])
        yield proc.sleep(1000.0)

    root = start(machine, ["top"])

    def killer():
        yield env.timeout(5.0)
        count = root.kill_tree(SIGKILL)
        assert count == 3

    env.process(killer())
    env.run(until=10.0)
    assert not machine.procs  # everything dead


def test_compute_cancelled_on_death(rig):
    env, machine, directory = rig

    @directory.register("burner")
    def burner(proc):
        yield proc.compute(1000.0)

    proc = start(machine, ["burner"])

    def killer():
        yield env.timeout(1.0)
        proc.signal(SIGKILL)

    env.process(killer())
    env.run(until=5.0)
    assert machine.cpu.load == 0


def test_crash_recorded_on_network(rig):
    env, machine, directory = rig

    @directory.register("buggy")
    def buggy(proc):
        yield proc.sleep(0.1)
        raise ValueError("bug")

    proc = start(machine, ["buggy"])
    env.run()
    assert proc.status is ProcessStatus.CRASHED
    assert proc.exit_code == 1
    assert machine.network.crashed == [proc]
    assert isinstance(proc.exception, ValueError)


def test_file_helpers_expand_home(rig):
    env, machine, directory = rig

    @directory.register("writer")
    def writer(proc):
        proc.write_file("~/.hosts", "anylinux\n")
        proc.append_file("$HOME/.hosts", "node07\n")
        yield proc.sleep(0)
        return 0

    start(machine, ["writer"], uid="bob")
    env.run()
    assert machine.fs.read("/home/bob/.hosts") == "anylinux\nnode07\n"


def test_empty_argv_rejected(rig):
    env, machine, directory = rig
    with pytest.raises(ValueError):
        OSProcess(machine, [], uid="u")


def test_pids_are_unique_and_increasing(rig):
    env, machine, directory = rig

    @directory.register("p")
    def p(proc):
        yield proc.sleep(1.0)

    procs = [start(machine, ["p"]) for _ in range(5)]
    pids = [p_.pid for p_ in procs]
    assert pids == sorted(pids)
    assert len(set(pids)) == 5


def test_machine_snapshot_fields(rig):
    env, machine, directory = rig

    @directory.register("p")
    def p(proc):
        yield proc.compute(10.0)

    start(machine, ["p"])
    env.run(until=1.0)
    snap = machine.snapshot()
    assert snap["host"] == "host0"
    assert snap["cpu_load"] == 1
    assert snap["n_processes"] == 1
    assert snap["platform"] == "i686linux"
    assert snap["console_active"] is False
