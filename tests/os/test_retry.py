"""connect_with_backoff: boot-time connects survive a slow-starting server."""

import pytest

from repro.cluster.network import Network
from repro.os import ConnectionRefused, Machine, OSProcess
from repro.os.programs import ProgramDirectory
from repro.os.retry import connect_with_backoff
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    network = Network(env)
    directory = ProgramDirectory("system")
    for name in ("a", "b"):
        machine = Machine(env, name)
        machine.path = [directory]
        network.add_machine(machine)
    return env, network, directory


def boot(network, host, argv):
    return OSProcess(
        network.machines[host], argv, uid="user", environ={}, startup_delay=0.0
    )


def test_retries_until_server_listens(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("lateserver")
    def lateserver(proc):
        yield proc.sleep(0.5)  # not listening yet on the client's first try
        listener = proc.listen(7000)
        yield listener.accept()
        yield proc.sleep(1.0)

    @directory.register("client")
    def client(proc):
        counter = network.metrics.counter("test.retries")
        conn = yield from connect_with_backoff(proc, "a", 7000, counter=counter)
        outcome["connected_at"] = env.now
        outcome["retries"] = counter.value
        conn.close()

    boot(network, "a", ["lateserver"])
    boot(network, "b", ["client"])
    env.run()
    assert outcome["connected_at"] < 2.0
    assert outcome["retries"] >= 1


def test_gives_up_after_bounded_attempts(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("client")
    def client(proc):
        try:
            yield from connect_with_backoff(
                proc, "a", 7000, attempts=3, base=0.1, cap=10.0
            )
        except ConnectionRefused:
            outcome["gave_up_at"] = env.now

    boot(network, "b", ["client"])
    env.run()
    # Two sleeps between three attempts: 0.1 + 0.2, plus connect latencies.
    assert outcome["gave_up_at"] == pytest.approx(0.3, abs=0.1)


def test_clean_first_connect_counts_no_retries(rig):
    env, network, directory = rig
    outcome = {}

    @directory.register("server")
    def server(proc):
        listener = proc.listen(7000)
        yield listener.accept()
        yield proc.sleep(1.0)

    @directory.register("client")
    def client(proc):
        counter = network.metrics.counter("test.retries")
        conn = yield from connect_with_backoff(proc, "a", 7000, counter=counter)
        outcome["retries"] = counter.value
        conn.close()

    boot(network, "a", ["server"])
    boot(network, "b", ["client"])
    env.run()
    assert outcome["retries"] == 0


def test_kill_mid_backoff_cancels_the_armed_timer(rig):
    """A process dying mid-backoff must not leave its timer live in the
    heap: the sleep is cancelled on the way out, so the simulation ends at
    the kill, not after the (long) backoff expires."""
    env, network, directory = rig

    @directory.register("client")
    def client(proc):
        yield from connect_with_backoff(
            proc, "a", 7000, attempts=5, base=100.0, cap=100.0
        )

    from repro.os.signals import SIGKILL

    proc = boot(network, "b", ["client"])
    env.run(until=1.0)  # first connect refused; now deep in a 100s backoff
    assert proc.is_alive
    proc.signal(SIGKILL)
    env.run()
    assert env.now < 100.0  # the cancelled backoff never held the sim open
    stats = env.heap_stats()
    assert stats["pending"] - stats["dead_pending"] == 0
