"""Property: a faulted run is a pure function of its seed.

Every source of nondeterminism in a chaos run — fault times, victims,
heartbeat-drop coin flips, scheduling — draws from named streams of the
simulation RNG, so the same seed must reproduce the run *exactly*: same
fault plan, same counters, and a byte-identical exported trace.  This is
the debuggability half of the fault-injection subsystem: any failure found
by chaos testing can be replayed at will.
"""

from repro.experiments import run_chaos
from repro.obs import TraceCollector


def _small_run(seed, tmp_path, tag):
    collector = TraceCollector()
    table = run_chaos(
        seed=seed,
        machines=3,
        sequential_jobs=1,
        horizon=240.0,
        crashes=2,
        partitions=1,
        trace=collector,
    )
    path = tmp_path / f"chaos-{tag}.jsonl"
    collector.write(str(path))
    return table, path.read_bytes()


def test_same_seed_same_fault_plan_byte_identical_trace(tmp_path):
    table_a, trace_a = _small_run(3, tmp_path, "a")
    table_b, trace_b = _small_run(3, tmp_path, "b")

    assert table_a.meta["plan"] == table_b.meta["plan"]
    assert table_a.meta["completed"] == table_b.meta["completed"]
    assert str(table_a) == str(table_b)
    assert trace_a == trace_b


def test_different_seeds_diverge(tmp_path):
    table_a, trace_a = _small_run(3, tmp_path, "a2")
    table_b, trace_b = _small_run(4, tmp_path, "b2")
    assert table_a.meta["plan"] != table_b.meta["plan"]
    assert trace_a != trace_b
