"""Property: a one-shard federation *is* the single broker.

DESIGN.md §17's degenerate-case contract: every federated behaviour —
the federation listener, borrow threads, hash hints, epoch fencing — is
gated on ``shard.count > 1``, so booting the same cluster through
``start_federation(shards=1)`` instead of ``start_broker()`` must change
*nothing*: byte-identical broker event logs, exported span traces and
final :func:`~repro.broker.journal.state_fingerprint` documents, across
churn, owner-reclaim and fault-schedule (chaos) scenarios.  Any future
federation change observable at one shard fails here.
"""

import json

from repro.broker.journal import state_fingerprint
from repro.cluster import Cluster, ClusterSpec, MachineSpec
from repro.experiments.sweep import _drive_churn
from repro.faults import FaultInjector, FaultPlan
from repro.obs import TraceCollector
from tests.broker.conftest import install_greedy


def _boot(cluster, fed, journal=None):
    """Start the broker either directly or as a federation of one."""
    if fed:
        return cluster.start_federation(shards=1, journal=journal).services[0]
    return cluster.start_broker(journal=journal)


def _artifacts(cluster, svc, tmp_path, tag):
    cluster.assert_no_crashes()
    collector = TraceCollector()
    collector.add_cluster(cluster, label="identity")
    path = tmp_path / f"fed-identity-{tag}.jsonl"
    collector.write(str(path))
    events = json.dumps(svc.events, sort_keys=True, default=str)
    return events, state_fingerprint(svc.state), path.read_bytes()


def _churn_run(fed, seed, tmp_path):
    cluster = Cluster(ClusterSpec.uniform(8, seed=seed))
    svc = _boot(cluster, fed)
    svc.wait_ready()
    _drive_churn(cluster, svc, 120.0)
    return _artifacts(cluster, svc, tmp_path, f"churn-{seed}-{fed}")


def test_one_shard_churn_identical_to_plain_broker(tmp_path):
    for seed in (1, 7):
        plain = _churn_run(False, seed, tmp_path)
        fed = _churn_run(True, seed, tmp_path)
        assert fed[0] == plain[0], f"event log diverged (seed {seed})"
        assert fed[1] == plain[1], f"fingerprint diverged (seed {seed})"
        assert fed[2] == plain[2], f"trace diverged (seed {seed})"


def _reclaim_run(fed, seed, tmp_path):
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="n02"),
            MachineSpec(name="p00", private_owner="ann"),
        ],
        seed=seed,
    )
    cluster = Cluster(spec)
    svc = _boot(cluster, fed)
    svc.wait_ready()
    # Owner comes and goes on the private machine: the adaptive job is
    # granted it, reclaimed off it, and re-granted — the §3 dance.
    cluster.add_owner_activity("p00", mean_away=60.0, mean_present=30.0)
    install_greedy(cluster)
    svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)", uid="a")
    cluster.env.run(until=400.0)
    return _artifacts(cluster, svc, tmp_path, f"reclaim-{seed}-{fed}")


def test_one_shard_reclaim_identical_to_plain_broker(tmp_path):
    plain = _reclaim_run(False, 11, tmp_path)
    fed = _reclaim_run(True, 11, tmp_path)
    assert fed[0] == plain[0]
    assert fed[1] == plain[1]
    assert fed[2] == plain[2]


def _chaos_run(fed, seed, tmp_path):
    cluster = Cluster(ClusterSpec.uniform(6, seed=seed))
    svc = _boot(cluster, fed, journal=True)
    svc.wait_ready()
    worker_hosts = [f"n{i:02d}" for i in range(1, 6)]
    stream = cluster.env.rng.stream("faults.plan")
    plan = FaultPlan.generate(
        stream,
        worker_hosts,
        start=5.0,
        window=40.0,
        crashes=2,
        partitions=1,
        broker_crashes=1,
    )
    FaultInjector(cluster, plan).start()
    handle = svc.submit(
        "n00", ["calypso", "40", "2.0", "3"], rsl="+(adaptive)", uid="cal"
    )
    cluster.env.run(until=400.0)
    assert handle.exit_code == 0
    return _artifacts(cluster, svc, tmp_path, f"chaos-{seed}-{fed}")


def test_one_shard_chaos_identical_to_plain_broker(tmp_path):
    for seed in (2, 5):
        plain = _chaos_run(False, seed, tmp_path)
        fed = _chaos_run(True, seed, tmp_path)
        assert fed[0] == plain[0], f"event log diverged (seed {seed})"
        assert fed[1] == plain[1], f"fingerprint diverged (seed {seed})"
        assert fed[2] == plain[2], f"trace diverged (seed {seed})"


def test_one_shard_federation_reuses_standalone_surfaces():
    cluster = Cluster(ClusterSpec.uniform(4, seed=1))
    federation = cluster.start_federation(shards=1)
    # The degenerate federation exposes the standalone handle and routes
    # every submission to its only shard.
    assert cluster.broker is federation.services[0]
    assert federation.shards == 1
    assert federation.shard_of("n03") == 0
    svc = federation.services[0]
    assert svc.shard is not None and svc.shard.count == 1
    # No federated machinery is armed: not replicated, not fenced.
    assert not svc.replicated
    assert not svc.fencing
