"""Property: snapshot+replay rebuilds the durable contract field-for-field.

A randomized sequence of the exact mutations the broker journals — machine
view changes, job registration and completion, pending-queue churn, grants,
releases, reclaims, lease renewals — is driven through a journalled
:class:`BrokerState` (with compaction forced often, so most runs cross
several snapshot generations).  Replaying the disk image must then produce
a state whose :func:`state_fingerprint` equals the live one's exactly.
"""

import random

import pytest

from repro.broker.journal import BrokerJournal, state_fingerprint
from repro.broker.state import AllocationState, BrokerState, PendingRequest
from repro.os.filesystem import Filesystem


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


HOSTS = [f"n{i:02d}" for i in range(6)]


def _random_ops(state, journal, clock, rng, steps, reqid=None):
    """One random mutation stream through the journalling mutators.

    ``reqid`` is a shared id iterator: like the real request protocol,
    (jobid, reqid) pairs must stay unique across a broker's whole life,
    restarts included.
    """
    if reqid is None:
        reqid = iter(range(1, 10_000))
    for _ in range(steps):
        clock.now += rng.uniform(0.1, 3.0)
        choice = rng.random()
        free = [h for h in HOSTS if state.machines[h].allocation is None]
        held = [h for h in HOSTS if state.machines[h].allocation is not None]
        if choice < 0.15:
            state.register_job(
                rng.choice(["ann", "bob"]),
                rng.choice(HOSTS),
                rng.choice(["", "+(adaptive)"]),
                ["compute", f"{rng.uniform(1, 9):.1f}"],
            )
        elif choice < 0.30:
            # Machine view churn: coalesced notes, durable at the next flush.
            record = state.machines[rng.choice(HOSTS)]
            record.cpu_load = rng.randrange(4)
            record.n_processes = rng.randrange(10)
            record.console_active = rng.random() < 0.3
            record.last_report = clock.now
            record.last_seen = clock.now
        elif choice < 0.45 and state.jobs and free:
            state.allocate(
                rng.choice(free),
                rng.choice(list(state.jobs)),
                firm=rng.random() < 0.5,
                now=clock.now,
                lease_expires_at=clock.now + rng.uniform(10.0, 60.0),
            )
        elif choice < 0.55 and held:
            # Release drops any claim on the machine (core.py's _finish_job,
            # mirrored — bare state.release leaves that to the caller).
            released = state.release(rng.choice(held))
            if released is not None and released.claimed_by is not None:
                released.claimed_by.reserved_host = None
        elif choice < 0.65 and state.jobs:
            state.pending.append(
                PendingRequest(
                    reqid=next(reqid),
                    jobid=rng.choice(list(state.jobs)),
                    symbolic=rng.choice(["anylinux", "anysolaris"]),
                    firm=rng.random() < 0.5,
                    arrived_at=clock.now,
                )
            )
        elif choice < 0.72 and state.pending:
            state.pending.remove(rng.choice(list(state.pending)))
        elif choice < 0.80 and held:
            # Reclaim, optionally claimed by a pending request (core.py's
            # _start_reclaim, mirrored: mutate then journal the same op).
            host = rng.choice(held)
            allocation = state.machines[host].allocation
            if allocation.state is AllocationState.ACTIVE:
                claimants = [
                    r for r in state.pending if r.reserved_host is None
                ]
                claimed_by = (
                    rng.choice(claimants)
                    if claimants and rng.random() < 0.6
                    else None
                )
                allocation.state = AllocationState.RECLAIMING
                allocation.reclaiming_since = clock.now
                allocation.claimed_by = claimed_by
                if claimed_by is not None:
                    claimed_by.reserved_host = host
                journal.record(
                    {
                        "op": "reclaim",
                        "host": host,
                        "since": allocation.reclaiming_since,
                        "claim": (
                            [claimed_by.jobid, claimed_by.reqid]
                            if claimed_by is not None
                            else None
                        ),
                    }
                )
        elif choice < 0.88 and held:
            # Lease renewal through the re-adoption path (note_lease).
            host = rng.choice(held)
            allocation = state.machines[host].allocation
            state.adopt_allocation(
                host,
                allocation.jobid,
                now=clock.now,
                lease_expires_at=clock.now + rng.uniform(20.0, 90.0),
            )
        elif state.jobs:
            # Job completion, with or without service-mode pruning
            # (core.py's _finish_job, mirrored).
            jobid = rng.choice(list(state.jobs))
            prune = rng.random() < 0.5
            if prune:
                state.jobs.pop(jobid)
            else:
                state.jobs[jobid].done = True
            journal.record({"op": "job_done", "jobid": jobid, "prune": prune})


@pytest.mark.parametrize("seed", range(10))
def test_snapshot_replay_equivalence(seed):
    rng = random.Random(seed)
    clock = Clock()
    journal = BrokerJournal(
        Filesystem(),
        clock,
        # Small enough that most runs compact several times, so equivalence
        # is proven across snapshot generations, not just raw WAL replay.
        compact_bytes=rng.choice([400, 1200, 65536]),
    )
    state = BrokerState()
    for host in HOSTS:
        state.add_machine(host)
    journal.attach(state, epoch=1)

    _random_ops(state, journal, clock, rng, steps=150)

    assert journal.flush(force=True)
    loaded = journal.load_state()
    assert loaded is not None
    rebuilt, info = loaded
    assert info.torn_tails == 0
    assert info.corrupt_records == 0
    assert info.skipped_ops == 0
    assert state_fingerprint(rebuilt) == state_fingerprint(state)
    assert info.epoch == 1


@pytest.mark.parametrize("seed", range(4))
def test_replay_equivalence_survives_a_mid_stream_restart(seed):
    """Recovery composed with more mutations and a second recovery is still
    exact: the post-recovery compaction re-bases the journal correctly."""
    rng = random.Random(1000 + seed)
    clock = Clock()
    fs = Filesystem()
    journal = BrokerJournal(fs, clock, compact_bytes=800)
    state = BrokerState()
    for host in HOSTS:
        state.add_machine(host)
    journal.attach(state, epoch=1)
    reqid = iter(range(1, 10_000))
    _random_ops(state, journal, clock, rng, steps=80, reqid=reqid)
    journal.flush(force=True)

    # "Restart": a successor journal over the same disk recovers, then keeps
    # journalling new mutations against the recovered state.
    successor = BrokerJournal(fs, clock, compact_bytes=800)
    rebuilt, info = successor.load_state()
    assert state_fingerprint(rebuilt) == state_fingerprint(state)
    successor.attach(rebuilt, epoch=info.epoch + 1, compact=True)
    _random_ops(rebuilt, successor, clock, rng, steps=80, reqid=reqid)
    successor.flush(force=True)

    final, info2 = successor.load_state()
    assert info2.epoch == info.epoch + 1
    assert state_fingerprint(final) == state_fingerprint(rebuilt)
