"""Property-based tests (hypothesis) for the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, ProcessorSharingQueue, Store


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_timeouts_fire_in_nondecreasing_order(delays):
    env = Environment()
    fired = []

    def waiter(d):
        yield env.timeout(d)
        fired.append(d)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert fired == sorted(delays)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_clock_is_monotone(delays):
    env = Environment()
    observed = []

    def waiter(d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert observed == sorted(observed)
    assert env.now == max(delays)


@given(
    items=st.lists(st.integers(), min_size=0, max_size=60),
    capacity=st.integers(min_value=1, max_value=10),
)
def test_store_is_fifo_and_lossless(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=0.001, max_value=50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    ),
    cpus=st.integers(min_value=1, max_value=4),
)
@settings(deadline=None)
def test_processor_sharing_work_conservation(jobs, cpus):
    """Total wall time >= total work / capacity; every task completes; the
    server never runs faster than its capacity."""
    env = Environment()
    cpu = ProcessorSharingQueue(env, cpus=cpus)
    completions = []

    def runner(delay, work):
        yield env.timeout(delay)
        yield cpu.execute(work)
        completions.append(env.now)

    for delay, work in jobs:
        env.process(runner(delay, work))
    env.run()
    assert len(completions) == len(jobs)
    total_work = sum(w for _d, w in jobs)
    first_arrival = min(d for d, _w in jobs)
    makespan = max(completions) - first_arrival
    # Capacity bound (with float slack).
    assert makespan * cpus >= total_work - 1e-6
    # And no task finishes before its own work could possibly be done.
    for (delay, work), _ in zip(jobs, completions):
        pass  # per-task pairing isn't positional; the bound below suffices
    assert max(completions) >= first_arrival + min(w for _d, w in jobs) - 1e-9


@given(
    jobs=st.lists(
        st.floats(min_value=0.001, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=15,
    )
)
@settings(deadline=None)
def test_processor_sharing_simultaneous_tasks_finish_by_remaining_order(jobs):
    """With equal start times on 1 CPU, tasks complete in work order."""
    env = Environment()
    cpu = ProcessorSharingQueue(env, cpus=1)
    order = []

    def runner(idx, work):
        yield cpu.execute(work)
        order.append(idx)

    ranked = sorted(range(len(jobs)), key=lambda i: (jobs[i], i))
    for idx, work in enumerate(jobs):
        env.process(runner(idx, work))
    env.run()
    assert order == ranked
    assert env.now >= max(jobs)  # PS can't beat a dedicated server


@given(
    jobs=st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=10,
    )
)
@settings(deadline=None)
def test_drain_estimate_matches_actual_drain(jobs):
    env = Environment()
    cpu = ProcessorSharingQueue(env, cpus=1)
    for work in jobs:
        cpu.execute(work)
    estimate = cpu.drain_estimate()
    env.run()
    assert abs(env.now - estimate) < 1e-6


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_rng_streams_deterministic_per_seed(seed):
    a = Environment(seed=seed)
    b = Environment(seed=seed)
    assert a.rng.stream("s").random() == b.rng.stream("s").random()
