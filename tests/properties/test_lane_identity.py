"""Property: lane count is invisible to simulation results.

The partitioned kernel's exact-merge executor preserves the serial total
order ``(time, priority, seq)`` bit for bit, so *every* deterministic
artifact the system produces — merged sweep digests, chaos tables and
exported traces under journaled broker crashes, soak reports, the final
``BrokerState`` fingerprint — must be byte-identical whether the kernel runs
one lane or many.  These tests are the PR's contract: any future change that
makes a lane configuration observable (beyond the explicitly excluded
per-lane stats) fails here.

Lane count is driven through ``RB_KERNEL_LANES`` for chaos/soak, the same
knob a user would flip, so the experiment signatures stay untouched.
"""

import pytest

from repro.broker.journal import state_fingerprint
from repro.experiments import run_chaos
from repro.experiments.soak import run_soak
from repro.experiments.sweep import merge_results, run_cell
from repro.obs import TraceCollector

LANE_COUNTS = (1, 2, 4)


def test_churn_cell_digest_identical_across_lanes():
    digests = {}
    events = {}
    for lanes in LANE_COUNTS:
        cell = run_cell("churn", 16, 1, 2.0, lanes=lanes)
        merged = merge_results([cell], 2.0)
        digests[lanes] = merged["digest"]
        events[lanes] = cell["result"]["heap"]["processed"]
        assert cell["kernel"]["lanes"] == lanes
    assert len(set(digests.values())) == 1, digests
    assert len(set(events.values())) == 1, events


def test_multi_lane_cell_reports_lane_activity():
    cell = run_cell("churn", 16, 1, 2.0, lanes=4)
    detail = cell["kernel"]["lane_detail"]
    assert len(detail) == 4
    # Partitioned 16 machines / 4 lanes: every lane hosts activity.
    assert all(lane["processed"] > 0 for lane in detail)
    assert sum(lane["processed"] for lane in detail) == (
        cell["result"]["heap"]["processed"]
    )


def _chaos_run(tmp_path, lanes, monkeypatch, tag):
    monkeypatch.setenv("RB_KERNEL_LANES", str(lanes))
    collector = TraceCollector()
    table = run_chaos(
        seed=5,
        machines=3,
        sequential_jobs=1,
        horizon=240.0,
        crashes=2,
        partitions=1,
        journal=True,
        trace=collector,
    )
    path = tmp_path / f"chaos-lanes{lanes}-{tag}.jsonl"
    collector.write(str(path))
    return table, path.read_bytes()


def test_journaled_chaos_byte_identical_across_lanes(tmp_path, monkeypatch):
    tables = {}
    traces = {}
    for lanes in LANE_COUNTS:
        table, trace = _chaos_run(tmp_path, lanes, monkeypatch, "a")
        tables[lanes] = table
        traces[lanes] = trace
    reference = tables[1]
    assert reference.meta["completed"] == reference.meta["jobs"]
    for lanes in LANE_COUNTS[1:]:
        assert str(tables[lanes]) == str(reference)
        assert tables[lanes].meta["plan"] == reference.meta["plan"]
        assert traces[lanes] == traces[1]


def test_soak_report_identical_across_lanes(monkeypatch):
    reports = {}
    for lanes in (1, 4):
        monkeypatch.setenv("RB_KERNEL_LANES", str(lanes))
        reports[lanes] = run_soak(
            seed=2,
            machines=4,
            submissions=40,
            restarts=1,
            day=120.0,
            journal=True,
        )
    assert reports[1].render() == reports[4].render()
    assert reports[1].drained


def test_final_broker_state_fingerprint_identical_across_lanes():
    from repro.cluster import Cluster, ClusterSpec
    from repro.experiments.sweep import _drive_churn

    fingerprints = {}
    for lanes in LANE_COUNTS:
        cluster = Cluster(ClusterSpec.uniform(12, seed=3, lanes=lanes))
        service = cluster.start_broker()
        service.wait_ready()
        _drive_churn(cluster, service, 90.0)
        cluster.assert_no_crashes()
        fingerprints[lanes] = state_fingerprint(service.state)
    assert fingerprints[2] == fingerprints[1]
    assert fingerprints[4] == fingerprints[1]


def test_rb_kernel_lanes_env_is_the_default(monkeypatch):
    from repro.cluster import ClusterSpec

    monkeypatch.setenv("RB_KERNEL_LANES", "3")
    spec = ClusterSpec.uniform(6, seed=0)
    assert spec.lane_count() == 3
    # An explicit spec value wins over the environment.
    assert ClusterSpec.uniform(6, seed=0, lanes=2).lane_count() == 2
    monkeypatch.delenv("RB_KERNEL_LANES")
    assert spec.lane_count() == 1


def test_lane_partition_is_contiguous_and_anchors_broker():
    from repro.cluster import Cluster, ClusterSpec

    cluster = Cluster(ClusterSpec.uniform(8, seed=0, lanes=4))
    lanes = [cluster.machines[name].lane for name in cluster.machine_names()]
    assert lanes == [0, 0, 1, 1, 2, 2, 3, 3]
    assert cluster.machines["n00"].lane == 0
    assert cluster.env.lane_count == 4


@pytest.mark.parametrize("lanes", [2, 4])
def test_stats_rpc_exposes_kernel_block(lanes):
    from repro.broker import protocol
    from repro.cluster import Cluster, ClusterSpec, ports

    cluster = Cluster(ClusterSpec.uniform(8, seed=1, lanes=lanes))
    service = cluster.start_broker()
    service.wait_ready()
    cluster.env.run(until=cluster.now + 30.0)
    replies = []

    @cluster.system_bin.register("statpoll")
    def statpoll(proc):
        conn = yield proc.connect("n00", ports.BROKER)
        conn.send(protocol.stats_request())
        reply = yield conn.recv()
        conn.close()
        replies.append(reply)
        return 0

    proc = cluster.run_command("n01", ["statpoll"], uid="op")
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    kernel = replies[0]["stats"]["kernel"]
    assert kernel["lanes"] == lanes
    assert len(kernel["lane_detail"]) == lanes
    assert kernel["lane_clock_skew"] >= 0.0
    assert kernel["window_stalls"] > 0
    assert kernel["events_processed"] > 0
