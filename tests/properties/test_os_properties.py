"""Property-based tests for the simulated OS and network."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.network import Network
from repro.os import Machine, OSProcess, SIGKILL, SIGTERM
from repro.os.programs import ProgramDirectory
from repro.sim import Environment


def _rig():
    env = Environment()
    network = Network(env)
    directory = ProgramDirectory("system")
    for name in ("a", "b"):
        machine = Machine(env, name)
        machine.path = [directory]
        network.add_machine(machine)
    return env, network, directory


@given(messages=st.lists(st.integers(), min_size=0, max_size=40))
@settings(deadline=None)
def test_connection_preserves_order_and_content(messages):
    env, network, directory = _rig()
    received = []

    @directory.register("server")
    def server(proc):
        listener = proc.listen(9000)
        conn = yield listener.accept()
        for _ in messages:
            received.append((yield conn.recv()))

    @directory.register("client")
    def client(proc):
        conn = yield proc.connect("a", 9000)
        for message in messages:
            conn.send(message)
        yield proc.sleep(1.0)

    OSProcess(network.machines["a"], ["server"], uid="u", startup_delay=0.0)
    OSProcess(network.machines["b"], ["client"], uid="u", startup_delay=0.0)
    env.run()
    assert received == messages


@given(
    tree=st.recursive(
        st.just([]),
        lambda children: st.lists(children, min_size=1, max_size=3),
        max_leaves=8,
    ),
    kill_kind=st.sampled_from([SIGKILL, SIGTERM]),
)
@settings(deadline=None)
def test_kill_tree_terminates_every_descendant(tree, kill_kind):
    """Random process trees: kill_tree leaves no survivor and empties the
    machine's process table of the whole family."""
    env, network, directory = _rig()
    spawned = []

    @directory.register("node")
    def node(proc):
        depth_key = proc.environ.get("SHAPE", "")
        shape = SHAPES[depth_key]
        spawned.append(proc)
        for index, child_shape in enumerate(shape):
            key = f"{depth_key}.{index}"
            SHAPES[key] = child_shape
            proc.spawn(["node"], environ={"SHAPE": key})
        yield proc.sleep(1000.0)

    SHAPES = {"": tree}
    root = OSProcess(
        network.machines["a"],
        ["node"],
        uid="u",
        environ={"SHAPE": ""},
        startup_delay=0.0,
    )
    env.run(until=5.0)

    def count_nodes(shape):
        return 1 + sum(count_nodes(child) for child in shape)

    assert len(spawned) == count_nodes(tree)
    killed = root.kill_tree(kill_kind)
    assert killed == len(spawned)
    env.run(until=10.0)
    assert all(not p.is_alive for p in spawned)
    assert all(p.pid not in network.machines["a"].procs for p in spawned)


@given(
    n_procs=st.integers(min_value=1, max_value=10),
    kill_at=st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
)
@settings(deadline=None)
def test_cpu_load_consistent_after_random_kills(n_procs, kill_at):
    """However many compute processes we kill, the CPU's task count equals
    the number of still-alive compute processes."""
    env, network, directory = _rig()

    @directory.register("burn")
    def burn(proc):
        yield proc.compute(100.0)

    machine = network.machines["a"]
    procs = [
        OSProcess(machine, ["burn"], uid="u", startup_delay=0.0)
        for _ in range(n_procs)
    ]

    def killer():
        yield env.timeout(kill_at)
        for victim in procs[:: 2]:
            if victim.is_alive:
                victim.signal(SIGKILL)

    env.process(killer())
    env.run(until=kill_at + 1.0)
    alive = sum(1 for p in procs if p.is_alive)
    assert machine.cpu.load == alive
