"""Property-based tests: policy decisions respect mechanism invariants.

Policies are pure functions over a BrokerState snapshot, so we can build
random states with hypothesis and check the safety rules the broker's
mechanisms rely on, for every policy:

* never grant a machine that is allocated, unreported, or whose owner is at
  the console;
* never grant a private machine to a non-adaptive job;
* never grant the requester's own home machine;
* never preempt a firm allocation, a reclaiming allocation, or the
  requester itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.state import AllocationState, BrokerState, PendingRequest
from repro.policy import DefaultPolicy, FifoPolicy, RandomIdlePolicy
from repro.policy.base import DecisionKind


@st.composite
def broker_states(draw):
    state = BrokerState()
    n_machines = draw(st.integers(min_value=1, max_value=8))
    n_jobs = draw(st.integers(min_value=1, max_value=4))

    jobs = []
    for j in range(n_jobs):
        adaptive = draw(st.booleans())
        rsl = "+(adaptive)" if adaptive else ""
        job = state.register_job(
            user=f"u{j}", home_host="h0", rsl_text=rsl, argv=["cmd"]
        )
        jobs.append(job)

    for i in range(n_machines):
        record = state.add_machine(f"h{i}")
        if draw(st.booleans()):
            record.update(
                {
                    "platform": "i686linux",
                    "kind": draw(st.sampled_from(["public", "private"])),
                    "owner": "own",
                    "console_active": draw(st.booleans()),
                    "cpu_load": draw(st.integers(min_value=0, max_value=3)),
                    "n_processes": 0,
                    "time": 1.0,
                }
            )
            if draw(st.booleans()):
                holder = draw(st.sampled_from(jobs))
                allocation = state.allocate(
                    record.host,
                    holder.jobid,
                    firm=draw(st.booleans()),
                    now=1.0,
                )
                if draw(st.booleans()):
                    allocation.state = AllocationState.RECLAIMING

    requester = draw(st.sampled_from(jobs))
    request = PendingRequest(
        reqid=1,
        jobid=requester.jobid,
        symbolic=draw(st.sampled_from(["anyhost", "anylinux", "anysparc"])),
        firm=draw(st.booleans()),
        arrived_at=2.0,
    )
    state.pending.append(request)
    return state, request


_policies = st.sampled_from(
    [DefaultPolicy(), FifoPolicy(), RandomIdlePolicy(seed=3)]
)


@given(state_and_request=broker_states(), policy=_policies)
@settings(deadline=None, max_examples=300)
def test_policy_decisions_are_safe(state_and_request, policy):
    state, request = state_and_request
    job = state.job(request.jobid)
    decision = policy.decide(state, request)

    if decision.kind is DecisionKind.GRANT:
        record = state.machine(decision.host)
        assert record.reported
        assert record.allocation is None
        assert not record.console_active
        assert decision.host != job.home_host
        if record.kind == "private":
            assert job.adaptive
        # The symbolic constraint held.
        if request.symbolic == "anylinux":
            assert "linux" in record.platform
        if request.symbolic == "anysparc":
            assert "sparc" in record.platform
    elif decision.kind is DecisionKind.PREEMPT:
        record = state.machine(decision.host)
        allocation = record.allocation
        assert allocation is not None
        assert allocation.jobid == decision.victim_jobid
        assert allocation.jobid != request.jobid
        assert not allocation.firm
        assert allocation.state is AllocationState.ACTIVE
        assert not record.console_active
    else:
        assert decision.kind is DecisionKind.WAIT


@given(state_and_request=broker_states())
@settings(deadline=None, max_examples=200)
def test_default_policy_is_deterministic(state_and_request):
    state, request = state_and_request
    policy = DefaultPolicy()
    first = policy.decide(state, request)
    second = policy.decide(state, request)
    assert first == second


@given(state_and_request=broker_states())
@settings(deadline=None, max_examples=200)
def test_default_policy_prefers_idle_over_preemption(state_and_request):
    state, request = state_and_request
    decision = DefaultPolicy().decide(state, request)
    if decision.kind is DecisionKind.PREEMPT:
        # There must have been no grantable idle machine.
        assert state.idle_machines(request) == []
