"""Property: broker crash recovery is deterministic and order-independent.

A restarted broker reconstructs its state from whichever daemons and apps
reach it first — an inherently racy process.  These properties pin the two
guarantees that make recovery debuggable: the reconstructed state does not
depend on arrival order (adoption is commutative), and a whole chaos run
with a broker crash in it is still a pure function of its seed.
"""

import itertools

from repro.broker.state import BrokerState
from repro.experiments import run_chaos
from repro.obs import TraceCollector

_INVENTORY = {"n01": 7, "n02": 7, "n03": 9}


def _adopt_in(order):
    state = BrokerState(first_jobid=10)
    for host in sorted(_INVENTORY):
        state.add_machine(host)
    for host in order:
        state.adopt_allocation(
            host, _INVENTORY[host], now=5.0, lease_expires_at=17.0
        )
    return {
        host: (
            state.machines[host].allocation.jobid,
            state.machines[host].allocation.lease_expires_at,
        )
        for host in sorted(_INVENTORY)
    }


def test_adoption_is_order_independent():
    """Daemons re-register in any order; the reconstructed allocation table
    is the same for every permutation."""
    results = [_adopt_in(order) for order in itertools.permutations(_INVENTORY)]
    assert all(result == results[0] for result in results)


def test_repeated_adoption_is_a_commutative_renewal():
    """Hello inventory and app resume both testify to the same allocation;
    whichever lands second must only ever push the lease forward."""
    a = BrokerState()
    a.add_machine("n01")
    a.adopt_allocation("n01", 7, now=1.0, lease_expires_at=13.0)
    a.adopt_allocation("n01", 7, now=2.0, lease_expires_at=11.0)
    b = BrokerState()
    b.add_machine("n01")
    b.adopt_allocation("n01", 7, now=1.0, lease_expires_at=11.0)
    b.adopt_allocation("n01", 7, now=2.0, lease_expires_at=13.0)
    assert (
        a.machines["n01"].allocation.lease_expires_at
        == b.machines["n01"].allocation.lease_expires_at
        == 13.0
    )


def test_conflicting_adoption_does_not_overwrite():
    state = BrokerState()
    state.add_machine("n01")
    first = state.adopt_allocation("n01", 7, now=1.0, lease_expires_at=13.0)
    assert first is not None
    second = state.adopt_allocation("n01", 8, now=2.0, lease_expires_at=14.0)
    assert second is None
    assert state.machines["n01"].allocation.jobid == 7


def _crash_run(seed, tmp_path, tag):
    collector = TraceCollector()
    table = run_chaos(
        seed=seed,
        machines=3,
        sequential_jobs=1,
        horizon=240.0,
        crashes=1,
        partitions=1,
        broker_crashes=1,
        trace=collector,
    )
    path = tmp_path / f"brokerchaos-{tag}.jsonl"
    collector.write(str(path))
    return table, path.read_bytes()


def test_broker_crash_run_is_byte_identical_for_same_seed(tmp_path):
    table_a, trace_a = _crash_run(5, tmp_path, "a")
    table_b, trace_b = _crash_run(5, tmp_path, "b")
    assert table_a.meta["plan"] == table_b.meta["plan"]
    assert str(table_a) == str(table_b)
    assert trace_a == trace_b
    # And the recovery actually happened in this run.
    assert "broker_crash" in table_a.meta["plan"]
    assert table_a.meta["completed"] == table_a.meta["jobs"]
    assert table_a.meta["stuck_allocations"] == 0
