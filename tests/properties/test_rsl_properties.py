"""Property-based tests for the RSL parser and symbolic name matching."""

import string

from hypothesis import given
from hypothesis import strategies as st

from repro.rsl import parse_rsl, symbolic_matches
from repro.rsl.parser import Clause, RSLRequest

_attr = st.text(
    alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12
).filter(lambda s: not s[0].isdigit())

_str_value = st.text(
    alphabet=string.ascii_letters + string.digits + "._-",
    min_size=0,
    max_size=12,
)

_value = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6), _str_value
)

_op = st.sampled_from(["=", "!=", ">=", "<=", ">", "<"])


@st.composite
def clauses(draw):
    attr = draw(_attr)
    if draw(st.booleans()):
        return Clause(attr, "flag", True)
    return Clause(attr, draw(_op), draw(_value))


@given(st.lists(clauses(), min_size=0, max_size=8))
def test_parse_roundtrip(clause_list):
    """str(parse(x)) == str(parse(str(parse(x)))) — rendering is canonical."""
    request = RSLRequest(clauses=clause_list)
    text = str(request)
    reparsed = parse_rsl(text)
    assert str(reparsed) == text
    assert len(reparsed.clauses) == len(clause_list)
    for original, parsed in zip(clause_list, reparsed.clauses):
        assert parsed.attr == original.attr
        assert parsed.op == original.op
        assert parsed.value == original.value


@given(st.lists(clauses(), min_size=0, max_size=8))
def test_parse_is_idempotent_on_semantics(clause_list):
    request = RSLRequest(clauses=clause_list)
    reparsed = parse_rsl(str(request))
    assert reparsed.count_min == request.count_min
    assert reparsed.module == request.module
    assert reparsed.adaptive == request.adaptive


@given(
    platform=st.text(
        alphabet=string.ascii_lowercase + string.digits, min_size=0, max_size=16
    )
)
def test_anyhost_matches_everything(platform):
    assert symbolic_matches("anyhost", {"platform": platform})
    assert symbolic_matches("any", {"platform": platform})


@given(
    suffix=st.text(
        alphabet=string.ascii_lowercase, min_size=1, max_size=8
    ),
    platform=st.text(
        alphabet=string.ascii_lowercase + string.digits, min_size=0, max_size=16
    ),
)
def test_symbolic_match_is_substring_semantics(suffix, platform):
    name = "any" + suffix
    expected = suffix in platform
    assert symbolic_matches(name, {"platform": platform}) == expected
