"""Properties of the WAL ship stream (DESIGN.md §16).

Two families:

* **Frame decoding is total** — :func:`parse_frames` is fed corrupted,
  truncated, duplicated and garbage-spliced inputs (a torn disk, a buggy
  resend, a hostile peer) and must never raise; it stops cleanly at the
  first unreadable frame, and a pure truncation decodes to an exact prefix
  of the original payloads.
* **Ship-stream equivalence** — a fake standby consuming the primary
  journal's shipped chunks (acking as it goes, exactly like ``rbstandby``)
  reproduces the primary's :func:`state_fingerprint` at *every* flush
  point, across compactions, for any ack cut point.  This is the invariant
  that makes a promoted standby's state trustworthy.
"""

import random

import pytest

from repro.broker.journal import (
    BrokerJournal,
    RecoveryInfo,
    _frame,
    apply_payloads,
    apply_snapshot,
    parse_frames,
    snapshot_state,
    state_fingerprint,
)
from repro.broker.state import BrokerState
from repro.os.filesystem import Filesystem
from tests.properties.test_journal_replay import HOSTS, Clock, _random_ops


def _random_payloads(rng):
    alphabet = "abcdefghij{}\":,0123456789"
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randrange(0, 40)))
        for _ in range(rng.randrange(1, 12))
    ]


def _mutate(data, rng):
    """One random corruption of a framed stream."""
    kind = rng.randrange(5)
    if not data:
        return data
    if kind == 0:  # truncate anywhere (torn tail)
        return data[: rng.randrange(len(data) + 1)]
    if kind == 1:  # flip one character (bit rot)
        i = rng.randrange(len(data))
        return data[:i] + rng.choice("zq!#") + data[i + 1 :]
    if kind == 2:  # duplicate a tail (a resend glued past the end)
        k = rng.randrange(1, len(data) + 1)
        return data + data[-k:]
    if kind == 3:  # delete a middle slice (a lost chunk)
        i = rng.randrange(len(data))
        j = rng.randrange(i, len(data) + 1)
        return data[:i] + data[j:]
    return data + "".join(rng.choice("xyz123") for _ in range(rng.randrange(1, 20)))


@pytest.mark.parametrize("seed", range(25))
def test_frame_decoding_is_total_under_corruption(seed):
    rng = random.Random(seed)
    payloads = _random_payloads(rng)
    data = "".join(_frame(p) for p in payloads)
    for _ in range(rng.randrange(1, 4)):
        data = _mutate(data, rng)
    decoded, torn, corrupt = parse_frames(data)  # must never raise
    # Parsing stops at the first unreadable frame: at most one bad record
    # is ever charged, and nothing after it is trusted.
    assert torn + corrupt <= 1
    # Every decoded payload survived a CRC check; re-framing them must
    # reproduce exactly the prefix of the input that was accepted.
    reframed = "".join(_frame(p) for p in decoded)
    assert data.startswith(reframed)


@pytest.mark.parametrize("seed", range(25))
def test_truncation_decodes_to_an_exact_prefix(seed):
    rng = random.Random(1000 + seed)
    payloads = _random_payloads(rng)
    data = "".join(_frame(p) for p in payloads)
    cut = rng.randrange(len(data) + 1)
    decoded, torn, corrupt = parse_frames(data[:cut])
    assert corrupt == 0
    assert decoded == payloads[: len(decoded)]
    whole = sum(len(_frame(p)) for p in decoded)
    # Either the cut landed on a frame boundary (clean prefix, no tear) or
    # mid-frame (everything before it decoded, one torn tail).
    assert (torn, whole) == ((0, cut) if whole == cut else (1, whole))


@pytest.mark.parametrize("seed", range(8))
def test_shipped_stream_reproduces_primary_fingerprint(seed):
    """The fake-standby equivalence property behind fenced promotion."""
    rng = random.Random(seed)
    clock = Clock()
    journal = BrokerJournal(
        Filesystem(),
        clock,
        # Small enough that most runs compact mid-stream, so the shipped
        # epoch openers are exercised, not just plain WAL appends.
        compact_bytes=rng.choice([400, 1200, 65536]),
    )
    state = BrokerState()
    for host in HOSTS:
        state.add_machine(host)
    journal.attach(state, epoch=1)
    journal.enable_shipping(stream=1)

    # The standby baselines from the snapshot the ship server sends at
    # hello (offset 0 of the stream), then applies frames on top.
    shadow = BrokerState()
    info = RecoveryInfo()
    apply_snapshot(shadow, snapshot_state(state), info)
    consumed = 0
    reqid = iter(range(1, 10_000))
    for _ in range(8):
        _random_ops(state, journal, clock, rng, steps=12, reqid=reqid)
        journal.flush(force=True)
        pending = journal.ship_pending(consumed)
        assert pending is not None  # nothing acked was ever trimmed early
        for start, data in pending:
            assert start == consumed  # chunk starts are valid cut points
            payloads, torn, corrupt = parse_frames(data)
            assert torn == 0 and corrupt == 0  # chunks are whole frames
            apply_payloads(shadow, payloads, info)
            consumed += len(data)
            journal.note_ship_ack(consumed)
        assert consumed == journal.flushed_offset
        assert journal.ship_lag() == 0
        # The standby's shadow at the acked offset is the primary's state
        # at the flush that produced it, field for field.
        assert state_fingerprint(shadow) == state_fingerprint(state)
    assert info.corrupt_records == 0
    assert info.skipped_ops == 0


@pytest.mark.parametrize("seed", range(4))
def test_resend_after_partial_ack_converges(seed):
    """An unacked tail resent from the last acked offset (the reconnect
    path) applies cleanly on top of what the standby already has."""
    rng = random.Random(4000 + seed)
    clock = Clock()
    journal = BrokerJournal(Filesystem(), clock, compact_bytes=65536)
    state = BrokerState()
    for host in HOSTS:
        state.add_machine(host)
    journal.attach(state, epoch=1)
    journal.enable_shipping(stream=1)

    shadow = BrokerState()
    info = RecoveryInfo()
    apply_snapshot(shadow, snapshot_state(state), info)
    _random_ops(state, journal, clock, rng, steps=30)
    journal.flush(force=True)
    chunks = journal.ship_pending(0)
    assert chunks

    # Apply and ack only a prefix of the chunks ("the connection died").
    acked = 0
    for start, data in chunks[: len(chunks) // 2]:
        payloads, _, _ = parse_frames(data)
        apply_payloads(shadow, payloads, info)
        acked = start + len(data)
    journal.note_ship_ack(acked)

    # Reconnect: the primary resends everything from the acked offset.
    resend = journal.ship_pending(acked)
    assert resend is not None
    for start, data in resend:
        assert start >= acked
        payloads, torn, corrupt = parse_frames(data)
        assert torn == 0 and corrupt == 0
        apply_payloads(shadow, payloads, info)
    assert state_fingerprint(shadow) == state_fingerprint(state)
