"""Model-based property tests for the PLinda tuple space."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.systems.plinda.space import TupleSpace, tuple_matches

_tuples = st.tuples(
    st.sampled_from(["task", "result", "cfg"]),
    st.integers(min_value=0, max_value=5),
)


@given(pattern=_tuples, candidate=_tuples)
def test_match_reflexive_and_exact(pattern, candidate):
    assert tuple_matches(candidate, candidate)
    assert tuple_matches(pattern, candidate) == (pattern == candidate)


@given(candidate=_tuples)
def test_wildcards_weaken_monotonically(candidate):
    assert tuple_matches((candidate[0], None), candidate)
    assert tuple_matches((None, candidate[1]), candidate)
    assert tuple_matches((None, None), candidate)


@given(
    outs=st.lists(_tuples, min_size=0, max_size=20),
    n_takes=st.integers(min_value=0, max_value=20),
)
@settings(deadline=None)
def test_abort_restores_exact_multiset(outs, n_takes):
    """out N tuples, take up to n under one transaction, abort: the space
    holds exactly the original multiset again."""
    env = Environment()
    space = TupleSpace(env)
    for tup in outs:
        space.out(tup)
    space.begin(1)
    taken = []

    def taker():
        for _ in range(min(n_takes, len(outs))):
            tup = yield space.take((None, None), txn_id=1)
            taken.append(tup)

    env.process(taker())
    env.run()
    assert Counter(taken) + Counter(space._store.items) == Counter(outs)
    space.abort(1)
    assert Counter(space._store.items) == Counter(outs)


@given(
    outs=st.lists(_tuples, min_size=1, max_size=20),
    n_takes=st.integers(min_value=1, max_value=20),
)
@settings(deadline=None)
def test_commit_makes_takes_permanent(outs, n_takes):
    env = Environment()
    space = TupleSpace(env)
    for tup in outs:
        space.out(tup)
    space.begin(1)
    k = min(n_takes, len(outs))

    def taker():
        for _ in range(k):
            yield space.take((None, None), txn_id=1)

    env.process(taker())
    env.run()
    space.commit(1)
    space.abort(1)  # must be a no-op after commit
    assert len(space) == len(outs) - k


@given(outs=st.lists(_tuples, min_size=0, max_size=15))
def test_read_preserves_contents(outs):
    env = Environment()
    space = TupleSpace(env)
    for tup in outs:
        space.out(tup)

    def reader():
        for _ in range(len(outs)):
            yield space.read((None, None))

    env.process(reader())
    env.run()
    assert Counter(space._store.items) == Counter(outs)


@given(
    outs=st.lists(_tuples, min_size=0, max_size=15),
    pattern=st.tuples(
        st.one_of(st.none(), st.sampled_from(["task", "result", "cfg"])),
        st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    ),
)
def test_count_agrees_with_matching(outs, pattern):
    env = Environment()
    space = TupleSpace(env)
    for tup in outs:
        space.out(tup)
    expected = sum(1 for t in outs if tuple_matches(pattern, t))
    assert space.count(pattern) == expected
