"""Integration tests for rsh/rshd over the simulated cluster."""

import pytest

from repro.cluster import Cluster, ClusterSpec


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(3))


def run_to_exit(cluster, proc):
    cluster.env.run(until=proc.terminated)
    return proc.exit_code


def test_rsh_runs_null_remotely(cluster):
    proc = cluster.run_command("n00", ["rsh", "n01", "null"])
    code = run_to_exit(cluster, proc)
    assert code == 0
    # Paper Table 1: "rsh n01 null" completes in ~0.3 s.
    assert 0.25 <= cluster.now <= 0.40
    cluster.assert_no_crashes()


def test_rsh_loop_takes_loop_time(cluster):
    proc = cluster.run_command("n00", ["rsh", "n01", "loop"])
    run_to_exit(cluster, proc)
    # Paper Table 1: "rsh n01 loop" ~ rsh overhead + 6.5 s.
    expected = cluster.calibration.loop_work
    assert expected + 0.25 <= cluster.now <= expected + 0.45


def test_rsh_remote_process_runs_on_target(cluster):
    seen = {}

    @cluster.system_bin.register("whereami")
    def whereami(proc):
        seen["host"] = proc.machine.name
        seen["uid"] = proc.uid
        yield proc.sleep(0)

    proc = cluster.run_command("n00", ["rsh", "n02", "whereami"], uid="carol")
    run_to_exit(cluster, proc)
    assert seen == {"host": "n02", "uid": "carol"}


def test_rsh_unknown_host_fails(cluster):
    proc = cluster.run_command("n00", ["rsh", "anylinux", "null"])
    assert run_to_exit(cluster, proc) == 1


def test_rsh_unknown_command_fails(cluster):
    proc = cluster.run_command("n00", ["rsh", "n01", "no-such-cmd"])
    assert run_to_exit(cluster, proc) == 1


def test_rsh_propagates_remote_failure(cluster):
    @cluster.system_bin.register("failing")
    def failing(proc):
        yield proc.sleep(0)
        return 2

    proc = cluster.run_command("n00", ["rsh", "n01", "failing"])
    assert run_to_exit(cluster, proc) == 1  # rsh collapses to 0/1


def test_rsh_missing_args(cluster):
    proc = cluster.run_command("n00", ["rsh", "n01"])
    assert run_to_exit(cluster, proc) == 1


def test_rsh_blocks_until_remote_exit(cluster):
    @cluster.system_bin.register("slow")
    def slow(proc):
        yield proc.sleep(5.0)

    proc = cluster.run_command("n00", ["rsh", "n01", "slow"])
    run_to_exit(cluster, proc)
    assert cluster.now > 5.0


def test_rsh_returns_early_for_daemonizing_command(cluster):
    @cluster.system_bin.register("daemon-prog")
    def daemon_prog(proc):
        yield proc.sleep(0.1)
        proc.daemonize()
        yield proc.sleep(60.0)  # keeps running in background

    proc = cluster.run_command("n00", ["rsh", "n01", "daemon-prog"])
    code = run_to_exit(cluster, proc)
    assert code == 0
    assert cluster.now < 5.0  # rsh returned long before the daemon exits
    # The daemon is still alive on n01.
    assert any(
        p.argv[0] == "daemon-prog" for p in cluster.machine("n01").procs.values()
    )


def test_concurrent_rsh_to_same_host(cluster):
    procs = [
        cluster.run_command("n00", ["rsh", "n01", "null"]) for _ in range(4)
    ]
    cluster.env.run(until=cluster.env.all_of([p.terminated for p in procs]))
    assert all(p.exit_code == 0 for p in procs)
    cluster.assert_no_crashes()


def test_remote_uid_is_requesting_user(cluster):
    """rshd must run the command as the requesting user, so the user's other
    processes can signal it (the property the app layer depends on)."""
    seen = {}

    @cluster.system_bin.register("id")
    def id_prog(proc):
        seen["uid"] = proc.uid
        yield proc.sleep(0)

    proc = cluster.run_command("n00", ["rsh", "n01", "id"], uid="dave")
    run_to_exit(cluster, proc)
    assert seen["uid"] == "dave"
