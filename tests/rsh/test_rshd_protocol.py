"""rshd wire-protocol edge cases (malformed and hostile clients)."""

import pytest

from repro.cluster import Cluster, ClusterSpec, ports
from repro.os.errors import ConnectionClosed


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(2))


def talk_to_rshd(cluster, request):
    """Open a raw connection to n01's rshd, send ``request``, record replies."""
    replies = []

    @cluster.system_bin.register("prober")
    def prober(proc):
        conn = yield proc.connect("n01", ports.RSHD)
        if request is not None:
            conn.send(request)
        try:
            while True:
                replies.append((yield conn.recv()))
        except ConnectionClosed:
            pass
        return 0

    proc = cluster.run_command("n00", ["prober"])
    cluster.env.run(until=proc.terminated)
    return replies


def test_malformed_request_rejected(cluster):
    replies = talk_to_rshd(cluster, {"type": "what"})
    assert replies == [{"type": "error", "message": "bad request {'type': 'what'}"}]


def test_non_dict_request_rejected(cluster):
    replies = talk_to_rshd(cluster, "garbage")
    assert replies[0]["type"] == "error"


def test_empty_command_rejected(cluster):
    replies = talk_to_rshd(
        cluster, {"type": "exec", "user": "u", "argv": [], "block": True}
    )
    assert replies == [{"type": "error", "message": "empty command"}]


def test_client_hangup_before_request_tolerated(cluster):
    @cluster.system_bin.register("hangup")
    def hangup(proc):
        conn = yield proc.connect("n01", ports.RSHD)
        conn.close()
        return 0

    proc = cluster.run_command("n00", ["hangup"])
    cluster.env.run(until=proc.terminated)
    cluster.env.run(until=cluster.now + 1.0)
    # rshd survives and still serves.
    ok = cluster.run_command("n00", ["rsh", "n01", "null"])
    cluster.env.run(until=ok.terminated)
    assert ok.exit_code == 0
    cluster.assert_no_crashes()


def test_nonblocking_exec_returns_immediately(cluster):
    replies = talk_to_rshd(
        cluster,
        {"type": "exec", "user": "u", "argv": ["loop"], "block": False},
    )
    # Only the "started" message; rshd closed without waiting for exit.
    assert [r["type"] for r in replies] == ["started"]


def test_compute_program_bad_args(cluster):
    for argv in (["compute"], ["compute", "not-a-number"]):
        proc = cluster.run_command("n00", argv)
        cluster.env.run(until=proc.terminated)
        assert proc.exit_code == 1
