"""Unit tests for the RSL parser and symbolic host names."""

import pytest

from repro.rsl import (
    RSLError,
    is_symbolic_hostname,
    parse_rsl,
    symbolic_matches,
)


def test_paper_example():
    req = parse_rsl('+(count>=4)(arch="i686linux")(module="pvm")')
    assert req.count_min == 4
    assert req.arch == "i686linux"
    assert req.module == "pvm"
    assert req.adaptive  # module implies adaptive


def test_empty_spec():
    req = parse_rsl("")
    assert req.count_min == 1
    assert req.module is None
    assert not req.adaptive
    assert req.matches_machine({"platform": "anything"})


def test_flag_clause():
    req = parse_rsl("+(adaptive)")
    assert req.adaptive
    assert req.module is None


def test_adaptive_explicit_value():
    assert parse_rsl("(adaptive=1)").adaptive
    assert not parse_rsl("(adaptive=0)").adaptive


def test_count_operators():
    assert parse_rsl("(count>=3)").count_min == 3
    assert parse_rsl("(count=2)").count_min == 2
    assert parse_rsl("(count>2)").count_min == 3


def test_start_script():
    req = parse_rsl('(start_script="run.sh")')
    assert req.start_script == "run.sh"


def test_ampersand_prefix_accepted():
    req = parse_rsl('&(count>=2)')
    assert req.count_min == 2


def test_whitespace_tolerated():
    req = parse_rsl('+ ( count >= 4 ) ( arch = "i686linux" )')
    assert req.count_min == 4
    assert req.arch == "i686linux"


def test_numeric_coercion():
    req = parse_rsl("(mem>=128)")
    clause = req.clauses[0]
    assert clause.value == 128 and isinstance(clause.value, int)


def test_garbage_rejected():
    with pytest.raises(RSLError):
        parse_rsl("(count>=")
    with pytest.raises(RSLError):
        parse_rsl("count>=4")


def test_matches_machine_arch():
    req = parse_rsl('(arch="i686linux")')
    assert req.matches_machine({"platform": "i686linux"})
    assert not req.matches_machine({"platform": "sparcsolaris"})


def test_matches_machine_ignores_job_attrs():
    req = parse_rsl('(count>=4)(module="pvm")(adaptive)')
    assert req.matches_machine({"platform": "whatever"})


def test_matches_machine_unknown_attr_verbatim():
    req = parse_rsl('(kind="public")')
    assert req.matches_machine({"kind": "public"})
    assert not req.matches_machine({"kind": "private"})


def test_round_trip_str():
    text = '+(count>=4)(arch="i686linux")(module="pvm")'
    req = parse_rsl(text)
    assert str(req) == text


def test_symbolic_hostnames():
    assert is_symbolic_hostname("anyhost")
    assert is_symbolic_hostname("anylinux")
    assert is_symbolic_hostname("ANYLINUX")
    assert not is_symbolic_hostname("n01")
    assert not is_symbolic_hostname("germany")  # prefix, not substring


def test_symbolic_match_any():
    assert symbolic_matches("anyhost", {"platform": "sparcsolaris"})
    assert symbolic_matches("any", {"platform": "x"})


def test_symbolic_match_platform_substring():
    assert symbolic_matches("anylinux", {"platform": "i686linux"})
    assert not symbolic_matches("anylinux", {"platform": "sparcsolaris"})
    assert symbolic_matches("anysolaris", {"platform": "sparcsolaris"})


def test_symbolic_match_rejects_real_names():
    with pytest.raises(ValueError):
        symbolic_matches("n01", {})
