"""Event cancellation and lazy heap deletion (the PR-3 kernel overhaul)."""

import pytest

from repro.sim.environment import Environment
from repro.sim.events import Timeout
from repro.sim.pshare import ProcessorSharingQueue


def test_cancelled_timer_never_fires_callbacks():
    env = Environment()
    fired = []
    timer = env.timeout(5.0)
    timer.add_callback(lambda ev: fired.append(ev))
    assert timer.cancel()
    env.run(until=20.0)
    assert fired == []
    assert timer.cancelled
    assert not timer.processed


def test_cancel_after_processing_is_a_noop():
    env = Environment()
    fired = []
    timer = env.timeout(1.0)
    timer.add_callback(lambda ev: fired.append(ev))
    env.run(until=2.0)
    assert fired == [timer]
    assert timer.cancel() is False
    assert not timer.cancelled


def test_cancel_is_idempotent_and_counts_one_dead_entry():
    env = Environment()
    timer = env.timeout(1.0)
    assert timer.cancel()
    assert timer.cancel()  # second cancel: still True, no double-count
    assert env.heap_stats()["dead_pending"] == 1


def test_cancelled_head_does_not_mask_later_events():
    """peek()/run(until=t) must never report a dead head as the next event."""
    env = Environment()
    dead = env.timeout(1.0)
    fired = []
    live = env.timeout(10.0)
    live.add_callback(lambda ev: fired.append(env.now))
    dead.cancel()
    # Horizon between the dead head and the live event: nothing may fire.
    env.run(until=5.0)
    assert fired == []
    env.run(until=15.0)
    assert fired == [10.0]


def test_step_skips_cancelled_entries_without_consuming_the_step():
    env = Environment()
    dead = env.timeout(1.0)
    live = env.timeout(2.0)
    seen = []
    live.add_callback(lambda ev: seen.append("live"))
    dead.cancel()
    env.step()  # must process `live`, discarding the dead entry on the way
    assert seen == ["live"]
    assert env.heap_stats()["skipped_cancelled"] == 1


def test_compaction_bounds_heap_under_sustained_cancel_churn():
    """Dead entries never exceed ~half the heap once past the floor."""
    env = Environment()
    anchor = env.timeout(1e9)  # keeps the queue non-empty
    for _ in range(50):
        batch = [env.timeout(100.0 + i) for i in range(100)]
        for timer in batch:
            timer.cancel()
        stats = env.heap_stats()
        assert stats["dead_pending"] <= max(
            stats["pending"] // 2 + 1, env.COMPACT_MIN
        )
    stats = env.heap_stats()
    assert stats["compactions"] > 0
    # The heap never grew anywhere near the 5000 cancelled timers pushed.
    assert stats["heap_high_water"] < 300
    assert not anchor.processed


def test_heap_bounded_under_sustained_ps_rearm_churn():
    """Arrivals re-arm the PS wake-up; stale timers must be reclaimed."""
    env = Environment()
    cpu = ProcessorSharingQueue(env, cpus=1)
    events = []
    # Work shrinks like 1/k^2, so even though each arrival halves the rate
    # the completion horizon still moves *earlier* every time, forcing a
    # cancel + re-arm of the wake-up timer on every arrival.
    for i in range(500):
        events.append(cpu.execute(5000.0 / (i + 1) ** 2))
    stats = env.heap_stats()
    # One live wake-up timer plus bounded dead entries — not 500 timers.
    assert stats["pending"] - stats["dead_pending"] <= 2
    assert stats["dead_pending"] <= max(stats["pending"] // 2 + 1, 64)
    env.run()
    assert all(ev.processed for ev in events)


def test_ps_membership_change_cancels_stale_timer():
    env = Environment()
    cpu = ProcessorSharingQueue(env, cpus=1)
    long = cpu.execute(100.0)
    assert cpu._timer is not None
    first_timer = cpu._timer
    # A shorter task halves the rate but still completes much earlier,
    # pulling the horizon in: the stale timer must be cancelled, not left
    # to fire into a dead callback.
    short = cpu.execute(1.0)
    assert cpu._timer is not first_timer
    assert first_timer.cancelled
    env.run(until=short)
    assert not long.processed
    env.run()
    assert long.processed


def test_ps_keep_if_earlier_timer_survives_arrivals():
    """Arrivals that push the horizon later keep the armed (earlier) timer:
    it fires early, completes nothing, and is re-armed — never leaked."""
    env = Environment()
    cpu = ProcessorSharingQueue(env, cpus=1)
    first = cpu.execute(10.0)
    timer = cpu._timer
    second = cpu.execute(10.0)  # same work: horizon moves later
    assert cpu._timer is timer  # kept, not cancelled
    assert not timer.cancelled
    env.run()
    assert first.processed and second.processed
    assert env.now == pytest.approx(20.0)


def test_condition_race_guard_timer_is_reclaimed():
    """any_of([op, timeout]) must not leak the losing guard timer."""
    env = Environment()
    for _ in range(100):
        op = env.event()
        guard = env.timeout(1000.0)
        race = env.any_of([op, guard])
        op.succeed("done")
        env.run(until=race)
        assert guard.cancelled
    stats = env.heap_stats()
    assert stats["pending"] - stats["dead_pending"] == 0


def test_timeout_value_and_repr_preserved():
    env = Environment()
    timer = Timeout(env, 3.0, value="payload")
    got = env.run(until=timer)
    assert got == "payload"
    assert "3.0" in repr(Timeout(env, 3.0))
