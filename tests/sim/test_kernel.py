"""Unit tests for the DES kernel: events, processes, run loop."""

import pytest

from repro.sim import Environment, Event, Interrupt, Timeout


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    env.process(_sleep(env, 3.5))
    env.run()
    assert env.now == pytest.approx(3.5)


def _sleep(env, delay):
    yield env.timeout(delay)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        value = yield env.timeout(1.0, value="hello")
        return value

    p = env.process(proc())
    assert env.run(p) == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.process(_sleep(env, 100.0))
    env.run(until=42.0)
    assert env.now == 42.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.process(_sleep(env, 5.0))
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 17

    assert env.run(env.process(proc())) == 17


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def worker(name, delay):
        yield env.timeout(delay)
        log.append((env.now, name))

    env.process(worker("b", 2.0))
    env.process(worker("a", 1.0))
    env.process(worker("c", 3.0))
    env.run()
    assert log == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_same_time_events_fifo_by_creation():
    env = Environment()
    log = []

    def worker(name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abcd":
        env.process(worker(name))
    env.run()
    assert log == list("abcd")


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(4.0, "open")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    def failer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    p = env.process(waiter())
    env.process(failer())
    assert env.run(p) == "caught boom"


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_with_non_exception_rejected():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_process_exception_stops_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_waiting_on_finished_process_returns_its_value():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return "done"

    def parent(child_proc):
        yield env.timeout(5.0)  # child finishes first
        value = yield child_proc
        return value

    c = env.process(child())
    p = env.process(parent(c))
    assert env.run(p) == "done"


def test_yield_non_event_is_a_type_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(TypeError, match="not an Event"):
        env.run()


def test_all_of_collects_values():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="x")
        t2 = env.timeout(2.0, value="y")
        results = yield env.all_of([t1, t2])
        return sorted(results.values())

    p = env.process(proc())
    assert env.run(p) == ["x", "y"]
    assert env.now == 2.0


def test_any_of_returns_first():
    env = Environment()

    def proc():
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(1.0, value="fast")
        results = yield env.any_of([t1, t2])
        return list(results.values())

    p = env.process(proc())
    assert env.run(p) == ["fast"]
    assert env.now == 1.0


def test_and_or_operators():
    env = Environment()

    def proc():
        both = yield env.timeout(1, value=1) & env.timeout(2, value=2)
        either = yield env.timeout(1, value=3) | env.timeout(9, value=4)
        return (sorted(both.values()), sorted(either.values()))

    p = env.process(proc())
    assert env.run(p) == ([1, 2], [3])


def test_interrupt_delivers_cause():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    def attacker(target):
        yield env.timeout(2.0)
        target.interrupt("why")

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(v) == ("interrupted", "why", 2.0)


def test_interrupt_then_continue_waiting():
    env = Environment()

    def victim():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)  # keep going after the interrupt
        return env.now

    def attacker(target):
        yield env.timeout(3.0)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(v) == 4.0


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_original_event_does_not_resume_interrupted_process():
    """After an interrupt, the abandoned event must not wake the process."""
    env = Environment()
    wakeups = []

    def victim():
        try:
            yield env.timeout(5.0)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
        yield env.timeout(100.0)

    def attacker(target):
        yield env.timeout(1.0)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run(until=50.0)
    assert wakeups == ["interrupt"]


def test_run_until_event():
    env = Environment()
    gate = env.event()

    def opener():
        yield env.timeout(7.0)
        gate.succeed("v")

    env.process(opener())
    assert env.run(until=gate) == "v"
    assert env.now == 7.0


def test_run_drains_queue_when_no_until():
    env = Environment()
    env.process(_sleep(env, 1.0))
    env.run()
    assert env.peek() == float("inf")


def test_rng_streams_are_reproducible():
    a = Environment(seed=7)
    b = Environment(seed=7)
    assert a.rng.stream("x").random() == b.rng.stream("x").random()


def test_rng_streams_are_independent_by_name():
    env = Environment(seed=7)
    x = env.rng.stream("x").random()
    y = env.rng.stream("y").random()
    assert x != y


def test_rng_different_seeds_differ():
    assert (
        Environment(seed=1).rng.stream("x").random()
        != Environment(seed=2).rng.stream("x").random()
    )
