"""Edge-case tests for the kernel: abort, defuse, condition failures."""

import pytest

from repro.sim import Environment, EventAborted, Interrupt


def test_abort_runs_finally_blocks():
    env = Environment()
    cleaned = []

    def victim():
        try:
            yield env.timeout(100.0)
        finally:
            cleaned.append(True)

    p = env.process(victim())

    def killer():
        yield env.timeout(1.0)
        p.abort("gone")

    env.process(killer())
    env.run(until=5.0)
    assert cleaned == [True]
    assert not p.is_alive
    assert p.value == "gone"


def test_abort_does_not_run_except_interrupt():
    """abort == SIGKILL semantics: Interrupt handlers never fire."""
    env = Environment()
    handled = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            handled.append(True)  # must NOT happen on abort

    p = env.process(victim())

    def killer():
        yield env.timeout(1.0)
        p.abort()

    env.process(killer())
    env.run(until=5.0)
    assert handled == []


def test_abort_dead_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(0.1)
        return 5

    p = env.process(quick())
    env.run()
    p.abort()  # no exception
    assert p.value == 5


def test_self_abort_rejected():
    env = Environment()

    def suicidal():
        yield env.timeout(0.1)
        p.abort()

    p = env.process(suicidal())
    with pytest.raises(RuntimeError, match="cannot abort itself"):
        env.run()


def test_waiters_of_aborted_process_resume():
    env = Environment()

    def victim():
        yield env.timeout(100.0)

    v = env.process(victim())

    def waiter():
        value = yield v
        return ("woke", value)

    w = env.process(waiter())

    def killer():
        yield env.timeout(1.0)
        v.abort("killed")

    env.process(killer())
    assert env.run(w) == ("woke", "killed")


def test_unhandled_failed_event_stops_run():
    env = Environment()
    ev = env.event()

    def failer():
        yield env.timeout(1.0)
        ev.fail(RuntimeError("nobody listens"))

    env.process(failer())
    with pytest.raises(RuntimeError, match="nobody listens"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    ev = env.event()
    ev.defuse()

    def failer():
        yield env.timeout(1.0)
        ev.fail(RuntimeError("quiet"))

    env.process(failer())
    env.run()  # no exception


def test_all_of_fails_fast():
    env = Environment()
    bad = env.event()

    def proc():
        slow = env.timeout(100.0)
        try:
            yield env.all_of([slow, bad])
        except ValueError as exc:
            return ("failed", str(exc), env.now)

    def failer():
        yield env.timeout(2.0)
        bad.fail(ValueError("nope"))

    p = env.process(proc())
    env.process(failer())
    outcome = env.run(p)
    assert outcome == ("failed", "nope", 2.0)


def test_empty_all_of_succeeds_immediately():
    env = Environment()

    def proc():
        result = yield env.all_of([])
        return result

    assert env.run(env.process(proc())) == {}


def test_condition_over_already_processed_events():
    env = Environment()
    done = env.event()
    done.succeed("v")

    def proc():
        yield env.timeout(1.0)  # let `done` process first
        result = yield env.any_of([done, env.timeout(50.0)])
        return list(result.values())

    assert env.run(env.process(proc())) == ["v"]


def test_mixing_environments_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        env1.all_of([env1.event(), env2.event()])


def test_callback_after_processed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    env.run()
    with pytest.raises(RuntimeError):
        ev.add_callback(lambda e: None)


def test_value_before_trigger_rejected():
    env = Environment()
    with pytest.raises(RuntimeError):
        _ = env.event().value


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.5)
    assert env.peek() == 7.5


def test_run_until_event_that_fails():
    env = Environment()
    gate = env.event()

    def failer():
        yield env.timeout(1.0)
        gate.fail(KeyError("boom"))

    env.process(failer())
    gate.defuse()
    with pytest.raises(KeyError):
        env.run(until=gate)
