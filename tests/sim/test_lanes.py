"""The partitioned kernel: lane mechanics and the windowed executor.

Covers the in-process side (lane scoping, exact-merge run loop, window
primitive, per-lane stats) and :mod:`repro.sim.lanes` (conservative window
protocol, serial/mp byte-identity, the lookahead safety contract).
"""

import sys

import pytest

from repro.sim.environment import Environment
from repro.sim.events import NORMAL
from repro.sim.lanes import LanedSimulation, LaneRuntime, lane_ring


# -- in-process lanes ------------------------------------------------------


def test_lane_count_validation():
    with pytest.raises(ValueError):
        Environment(lanes=0)
    assert Environment(lanes=3).lane_count == 3
    assert Environment().lane_count == 1


def test_schedule_into_places_event_in_target_lane():
    env = Environment(lanes=3)
    ev = env.event()
    ev._ok = True
    ev._value = None
    env.schedule_into(2, ev, delay=1.0)
    stats = env.heap_stats()
    assert [lane["pending"] for lane in stats["lanes"]] == [0, 0, 1]
    assert stats["pending"] == 1


def test_lane_scope_restore_roundtrip():
    env = Environment(lanes=2)
    assert env._lane.id == 0
    token = env.lane_scope(1)
    assert env._lane.id == 1
    assert env._queue is env._lanes[1].heap
    env.lane_restore(token)
    assert env._lane.id == 0
    assert env._queue is env._lanes[0].heap


def test_cross_lane_timers_run_in_serial_order():
    """Events spread across lanes are dispatched in global (time, seq) order."""
    for lanes in (1, 2, 4):
        env = Environment(lanes=lanes)
        order = []
        for i in range(40):
            ev = env.event()
            ev._ok = True
            ev._value = i
            ev.callbacks.append(lambda e: order.append(e._value))
            # Deterministic but lane-interleaved placement and times.
            env.schedule_into(i % lanes, ev, delay=float((i * 7) % 10))
        env.run()
        if lanes == 1:
            expected = order
        assert order == expected


def test_multi_lane_run_until_event_and_clock():
    env = Environment(lanes=2)

    def pinger():
        yield env.timeout(1.0)
        done = env.event()
        done._ok = True
        done._value = None
        env.schedule_into(1, done, delay=0.0)
        return 42

    proc = env.process(pinger())
    assert env.run(until=proc) == 42
    assert env.now == pytest.approx(1.0)


def test_run_window_is_half_open():
    env = Environment()
    fired = []
    t1 = env.timeout(1.0, "a")
    t1.callbacks.append(lambda e: fired.append(e._value))
    t2 = env.timeout(2.0, "b")
    t2.callbacks.append(lambda e: fired.append(e._value))
    env.run_window(2.0)
    # The event exactly at the window end is left for the next window...
    assert fired == ["a"]
    assert env.now == pytest.approx(2.0)
    env.run_window(2.5)
    assert fired == ["a", "b"]
    assert env.now == pytest.approx(2.5)


def test_run_window_rejects_past_and_multi_lane():
    env = Environment()
    env.run_window(1.0)
    with pytest.raises(ValueError):
        env.run_window(0.5)
    laned = Environment(lanes=2)
    with pytest.raises(AssertionError):
        laned.run_window(1.0)


def test_heap_stats_reports_per_lane_high_water_and_stalls():
    env = Environment(lanes=2)

    def ping_pong(lane, other):
        while env.now < 5.0:
            yield env.timeout(0.5)
            ev = env.event()
            ev._ok = True
            ev._value = None
            env.schedule_into(other, ev, delay=0.5)

    token = env.lane_scope(0)
    env.process(ping_pong(0, 1))
    env.lane_restore(token)
    token = env.lane_scope(1)
    env.process(ping_pong(1, 0))
    env.lane_restore(token)
    env.run(until=6.0)
    stats = env.heap_stats()
    lanes = stats["lanes"]
    assert len(lanes) == 2
    assert all(lane["heap_high_water"] >= 1 for lane in lanes)
    assert sum(lane["processed"] for lane in lanes) == stats["processed"]
    # Cross-lane pushes must have broken batched runs at least once.
    assert sum(lane["window_stalls"] for lane in lanes) > 0
    assert all(lane["clock"] <= env.now for lane in lanes)


def test_single_lane_stats_mirror_globals():
    env = Environment()
    env.timeout(1.0)
    env.run()
    stats = env.heap_stats()
    assert len(stats["lanes"]) == 1
    assert stats["lanes"][0]["processed"] == stats["processed"]
    assert stats["lanes"][0]["heap_high_water"] == stats["heap_high_water"]


def test_cancellation_across_lanes_is_skipped_not_run():
    env = Environment(lanes=2)
    fired = []
    victim = env.event()
    victim._ok = True
    victim._value = "victim"
    victim.callbacks.append(lambda e: fired.append(e._value))
    env.schedule_into(1, victim, delay=1.0)
    keeper = env.event()
    keeper._ok = True
    keeper._value = "keeper"
    keeper.callbacks.append(lambda e: fired.append(e._value))
    env.schedule_into(0, keeper, delay=2.0)
    victim.cancel()
    env.run()
    assert fired == ["keeper"]
    assert env.heap_stats()["skipped_cancelled"] == 1


# -- windowed executor -----------------------------------------------------


def test_post_enforces_lookahead_floor():
    rt = LaneRuntime(0, 2, lookahead=0.1, seed=0)
    with pytest.raises(ValueError):
        rt.post(1, "x", delay=0.05)
    rt.post(1, "x", delay=0.1)
    assert len(rt.outgoing) == 1


def test_laned_simulation_validates_parameters():
    with pytest.raises(ValueError):
        LanedSimulation(0, lambda rt: None)
    with pytest.raises(ValueError):
        LanedSimulation(2, lambda rt: None, lookahead=0.0)
    with pytest.raises(ValueError):
        LanedSimulation(1, lambda rt: None).run(1.0, backend="gpu")


def test_local_post_delivers_without_envelope():
    received = []

    def build(rt):
        rt.on_message(received.append)

        def sender():
            yield rt.env.timeout(0.01)
            rt.post(rt.lane_id, "self")

        rt.env.process(sender())

    doc = LanedSimulation(1, build, lookahead=0.001).run(1.0)
    assert received == ["self"]
    assert doc["envelopes"] == 0
    assert doc["lane_results"][0]["received"] == 1


def test_cross_lane_envelopes_arrive_after_lookahead():
    log = []

    def build(rt):
        rt.on_message(lambda payload: log.append((rt.lane_id, rt.env.now, payload)))
        if rt.lane_id == 0:

            def sender():
                yield rt.env.timeout(0.5)
                rt.post(1, "hello")

            rt.env.process(sender())

    doc = LanedSimulation(2, build, lookahead=0.25).run(2.0)
    assert log == [(1, 0.75, "hello")]
    assert doc["envelopes"] == 1
    assert doc["windows"] >= 2


def test_lane_ring_serial_mp_byte_identical():
    if sys.platform != "linux":  # pragma: no cover - fork backend
        pytest.skip("mp backend needs fork")
    build = lane_ring(64, mean=0.001, send_every=3)
    for lanes in (2, 4):
        sim = LanedSimulation(lanes, build, lookahead=0.0005, seed=11)
        serial = sim.run(0.25, backend="serial")
        parallel = sim.run(0.25, backend="mp")
        assert serial["digest"] == parallel["digest"]
        assert serial == parallel


def test_lane_ring_totals_consistent_across_lane_counts():
    build = lane_ring(48, mean=0.001, send_every=2)
    docs = {
        lanes: LanedSimulation(lanes, build, lookahead=0.0005, seed=3).run(0.2)
        for lanes in (1, 2, 4)
    }
    ticks = {
        lanes: sum(lr["result"]["ticks"] for lr in doc["lane_results"])
        for lanes, doc in docs.items()
    }
    # Local actor activity is partition-independent; only message delivery
    # differs by whatever is still in flight at the horizon.
    assert len(set(ticks.values())) == 1
    for lanes, doc in docs.items():
        sent = sum(lr["sent"] for lr in doc["lane_results"])
        received = sum(lr["received"] for lr in doc["lane_results"])
        # Anything unreceived is either an unrouted envelope (in_flight) or
        # a delivery timer still in some lane's heap past the horizon.
        assert sent - received >= doc["in_flight"] >= 0


def test_same_seed_same_doc_different_seed_diverges():
    build = lane_ring(32, mean=0.001)
    doc_a = LanedSimulation(2, build, lookahead=0.0005, seed=5).run(0.1)
    doc_b = LanedSimulation(2, build, lookahead=0.0005, seed=5).run(0.1)
    doc_c = LanedSimulation(2, build, lookahead=0.0005, seed=6).run(0.1)
    assert doc_a["digest"] == doc_b["digest"]
    assert doc_a["digest"] != doc_c["digest"]
