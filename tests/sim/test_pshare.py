"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.sim import Environment, ProcessorSharingQueue


@pytest.fixture
def env():
    return Environment()


def run_and_record(env, cpu, jobs):
    """Start (delay, work, name) jobs; return {name: completion_time}."""
    done_at = {}

    def runner(delay, work, name):
        yield env.timeout(delay)
        yield cpu.execute(work, tag=name)
        done_at[name] = env.now

    for delay, work, name in jobs:
        env.process(runner(delay, work, name))
    env.run()
    return done_at


def test_single_task_nominal_time(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    done = run_and_record(env, cpu, [(0.0, 6.5, "loop")])
    assert done["loop"] == pytest.approx(6.5)


def test_two_tasks_share_one_cpu(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    done = run_and_record(env, cpu, [(0.0, 1.0, "a"), (0.0, 1.0, "b")])
    # Each progresses at rate 1/2 while both run -> both done at t=2.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_two_tasks_two_cpus_no_slowdown(env):
    cpu = ProcessorSharingQueue(env, cpus=2)
    done = run_and_record(env, cpu, [(0.0, 1.0, "a"), (0.0, 1.0, "b")])
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_unequal_tasks_processor_sharing_math(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    done = run_and_record(env, cpu, [(0.0, 1.0, "short"), (0.0, 3.0, "long")])
    # Both at rate 1/2 until short finishes at t=2 (has done 1.0 work);
    # long then has 2.0 left at rate 1 -> finishes at t=4.
    assert done["short"] == pytest.approx(2.0)
    assert done["long"] == pytest.approx(4.0)


def test_late_arrival_slows_running_task(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    done = run_and_record(env, cpu, [(0.0, 2.0, "first"), (1.0, 2.0, "second")])
    # first: 1.0 work by t=1; shares until t=3 (each +1.0); first has 0 left
    # at t=3. second then has 1.0 left alone -> t=4.
    assert done["first"] == pytest.approx(3.0)
    assert done["second"] == pytest.approx(4.0)


def test_speed_factor_scales_time(env):
    cpu = ProcessorSharingQueue(env, cpus=1, speed=2.0)
    done = run_and_record(env, cpu, [(0.0, 6.0, "x")])
    assert done["x"] == pytest.approx(3.0)


def test_zero_work_completes_immediately(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    ev = cpu.execute(0.0)
    assert ev.triggered and ev.ok


def test_negative_work_rejected(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    with pytest.raises(ValueError):
        cpu.execute(-1.0)


def test_cancel_removes_task(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    done_at = {}

    def victim():
        yield cpu.execute(10.0, tag="victim")
        done_at["victim"] = env.now  # pragma: no cover - must not happen

    def other():
        yield cpu.execute(4.0, tag="other")
        done_at["other"] = env.now

    env.process(victim())
    env.process(other())

    def killer():
        yield env.timeout(2.0)
        # Find the victim's completion event via the queue's internals.
        victim_task = [t for t in cpu._tasks.values() if t.tag == "victim"][0]
        assert cpu.cancel(victim_task.done)

    env.process(killer())
    env.run(until=100.0)
    # other: shared (rate 1/2) for 2s -> 1.0 done; then alone: 3.0 more.
    assert done_at == {"other": pytest.approx(5.0)}


def test_cancel_finished_task_returns_false(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    ev = cpu.execute(1.0)
    env.run(until=2.0)
    assert cpu.cancel(ev) is False


def test_load_tracks_membership(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    cpu.execute(5.0)
    cpu.execute(5.0)
    assert cpu.load == 2
    env.run(until=20.0)
    assert cpu.load == 0


def test_utilization_idle_machine_is_zero(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    env.process(_tick(env, 10.0))
    env.run()
    assert cpu.utilization() == pytest.approx(0.0)


def _tick(env, t):
    yield env.timeout(t)


def test_utilization_half_busy(env):
    cpu = ProcessorSharingQueue(env, cpus=1)

    def worker():
        yield cpu.execute(5.0)
        yield env.timeout(5.0)

    env.process(worker())
    env.run()
    assert env.now == pytest.approx(10.0)
    assert cpu.utilization() == pytest.approx(0.5)


def test_utilization_multi_cpu_fraction(env):
    cpu = ProcessorSharingQueue(env, cpus=4)

    def worker():
        yield cpu.execute(10.0)

    env.process(worker())
    env.run()
    # 1 of 4 CPUs busy for the whole run.
    assert cpu.utilization() == pytest.approx(0.25)


def test_reset_accounting(env):
    cpu = ProcessorSharingQueue(env, cpus=1)

    def worker():
        yield cpu.execute(4.0)
        cpu.reset_accounting()
        yield env.timeout(6.0)

    env.process(worker())
    env.run()
    assert cpu.utilization() == pytest.approx(0.0)


def test_drain_estimate_empty(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    assert cpu.drain_estimate() == 0.0


def test_drain_estimate_matches_simulation(env):
    cpu = ProcessorSharingQueue(env, cpus=1)
    cpu.execute(1.0, tag="short")
    cpu.execute(3.0, tag="long")
    # From the PS math above: last completion at t=4.
    assert cpu.drain_estimate() == pytest.approx(4.0)
    env.run()
    assert env.now == pytest.approx(4.0)


def test_invalid_construction(env):
    with pytest.raises(ValueError):
        ProcessorSharingQueue(env, cpus=0)
    with pytest.raises(ValueError):
        ProcessorSharingQueue(env, cpus=1, speed=0.0)


def test_drain_estimate_cache_stays_correct_across_changes(env):
    """The cached remaining-work ordering must be invisible to callers:
    repeated polls, arrivals, partial drains, and completions all yield the
    same estimate a cache-free recomputation would."""
    cpu = ProcessorSharingQueue(env, cpus=1)

    def fresh_estimate():
        order = sorted(t.remaining for t in cpu._tasks.values())
        t = prev = 0.0
        for idx, remaining in enumerate(order):
            active = len(order) - idx
            rate = cpu.speed * min(1.0, cpu.cpus / active)
            t += (remaining - prev) / rate
            prev = remaining
        return t

    cpu.execute(6.0)
    first = cpu.drain_estimate()
    assert cpu.drain_estimate() == first  # cached poll, same answer
    assert first == pytest.approx(fresh_estimate())

    cpu.execute(2.0)  # arrival invalidates the cached ordering
    assert cpu.drain_estimate() == pytest.approx(fresh_estimate())

    env.run(until=1.0)  # uniform drain keeps the cached order valid
    assert cpu.drain_estimate() == pytest.approx(fresh_estimate())
    assert cpu.drain_estimate() == pytest.approx(3.0 + 4.0)

    env.run(until=4.5)  # the short task completed: membership changed
    assert cpu.drain_estimate() == pytest.approx(fresh_estimate())
    env.run()
    assert cpu.drain_estimate() == 0.0
