"""Unit tests for Store, FilterStore and Resource."""

import pytest

from repro.sim import Environment, FilterStore, Resource, Store, StoreFull


@pytest.fixture
def env():
    return Environment()


def test_put_then_get(env):
    store = Store(env)

    def proc():
        yield store.put("x")
        item = yield store.get()
        return item

    assert env.run(env.process(proc())) == "x"


def test_get_blocks_until_put(env):
    store = Store(env)
    log = []

    def consumer():
        item = yield store.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(5.0, "late")]


def test_fifo_ordering(env):
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    def producer():
        for item in (1, 2, 3):
            yield store.put(item)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [1, 2, 3]


def test_capacity_blocks_putter(env):
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a stored", env.now))
        yield store.put("b")
        log.append(("b stored", env.now))

    def consumer():
        yield env.timeout(10.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("a stored", 0.0), ("b stored", 10.0)]


def test_put_nowait_raises_when_full(env):
    store = Store(env, capacity=2)
    store.put_nowait(1)
    store.put_nowait(2)
    with pytest.raises(StoreFull):
        store.put_nowait(3)


def test_zero_capacity_rejected(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_len_reflects_buffer(env):
    store = Store(env)
    store.put_nowait("a")
    store.put_nowait("b")
    assert len(store) == 2


def test_cancel_pending_get(env):
    store = Store(env)
    get_event = store.get()
    store.cancel(get_event)
    store.put_nowait("x")
    # The cancelled getter must not consume the item.
    assert list(store.items) == ["x"]


def test_multiple_getters_fifo(env):
    store = Store(env)
    order = []

    def getter(name):
        item = yield store.get()
        order.append((name, item))

    env.process(getter("first"))
    env.process(getter("second"))

    def producer():
        yield env.timeout(1.0)
        yield store.put("a")
        yield store.put("b")

    env.process(producer())
    env.run()
    assert order == [("first", "a"), ("second", "b")]


# -- FilterStore -----------------------------------------------------------


def test_filter_store_matches_predicate(env):
    store = FilterStore(env)
    store.put_nowait(("size", 1))
    store.put_nowait(("color", "red"))

    def proc():
        item = yield store.get(lambda it: it[0] == "color")
        return item

    assert env.run(env.process(proc())) == ("color", "red")
    assert list(store.items) == [("size", 1)]


def test_filter_store_waits_for_match(env):
    store = FilterStore(env)
    log = []

    def consumer():
        item = yield store.get(lambda it: it > 10)
        log.append((env.now, item))

    def producer():
        yield store.put(3)
        yield env.timeout(2.0)
        yield store.put(42)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(2.0, 42)]
    assert list(store.items) == [3]


def test_filter_store_default_predicate_takes_anything(env):
    store = FilterStore(env)
    store.put_nowait("x")

    def proc():
        return (yield store.get())

    assert env.run(env.process(proc())) == "x"


def test_filter_store_peek_matching(env):
    store = FilterStore(env)
    for i in range(5):
        store.put_nowait(i)
    assert store.peek_matching(lambda x: x % 2 == 0) == [0, 2, 4]
    assert len(store) == 5  # peek does not consume


def test_filter_store_skipped_getter_not_starved(env):
    """A blocked selective getter must not block later compatible getters."""
    store = FilterStore(env)
    got = []

    def picky():
        item = yield store.get(lambda it: it == "never")
        got.append(("picky", item))

    def easy():
        item = yield store.get()
        got.append(("easy", item))

    env.process(picky())
    env.process(easy())

    def producer():
        yield env.timeout(1.0)
        yield store.put("plain")

    env.process(producer())
    env.run(until=10.0)
    assert got == [("easy", "plain")]


# -- Resource -----------------------------------------------------------


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    holds = []

    def holder(name):
        req = res.request()
        yield req
        holds.append((name, env.now))
        yield env.timeout(5.0)
        res.release(req)

    for name in ("a", "b", "c"):
        env.process(holder(name))
    env.run()
    assert holds == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_count(env):
    res = Resource(env, capacity=3)
    reqs = [res.request() for _ in range(2)]
    env.run(until=0.1)
    assert res.count == 2
    res.release(reqs[0])
    assert res.count == 1


def test_release_unqueued_request_is_noop(env):
    res = Resource(env, capacity=1)
    r1 = res.request()
    env.run(until=0.1)
    res.release(r1)
    res.release(r1)  # double release must not corrupt state
    assert res.count == 0


def test_release_pending_request_withdraws_it(env):
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    env.run(until=0.1)
    assert res.count == 1
    res.release(r2)  # r2 never granted; withdrawing leaves r1 held
    assert res.count == 1
    assert len(res.queue) == 0


def test_resource_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
