"""Integration tests for the Calypso substrate."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.signals import SIGKILL, SIGTERM


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(4))


def hostfile(cluster, host, uid, entries):
    cluster.machine(host).fs.write(
        f"/home/{uid}/.hosts", "".join(e + "\n" for e in entries)
    )


def workers_on(cluster, host):
    return [
        p
        for p in cluster.machine(host).procs.values()
        if p.argv[0] == "calypso_worker"
    ]


def test_completes_with_explicit_hosts(cluster):
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["calypso", "8", "1.0", "2"])
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 0
    # 8 steps of 1 CPU-second over 2 workers: ~4 s of compute plus startup.
    assert 4.0 <= cluster.now <= 8.0
    cluster.assert_no_crashes()


def test_workers_placed_per_hostfile(cluster):
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["calypso", "50", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.0)
    assert len(workers_on(cluster, "n01")) == 1
    assert len(workers_on(cluster, "n02")) == 1


def test_worker_kill_does_not_lose_steps(cluster):
    """Eager scheduling: killing a worker mid-step re-runs the step."""
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["calypso", "10", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.2)
    victim = workers_on(cluster, "n01")[0]
    victim.signal(SIGKILL)
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 0
    cluster.assert_no_crashes()


def test_worker_sigterm_graceful_and_replaced(cluster):
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["calypso", "200", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.2)
    victim = workers_on(cluster, "n02")[0]
    victim.signal(SIGTERM)
    cluster.env.run(until=cluster.now + 4.0)
    # The master's grow slot re-acquired a worker on the same host.
    assert len(workers_on(cluster, "n02")) == 1
    assert master.is_alive
    cluster.assert_no_crashes()


def test_all_workers_lost_then_recovered(cluster):
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["calypso", "30", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.2)
    for host in ("n01", "n02"):
        for worker in workers_on(cluster, host):
            worker.signal(SIGKILL)
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 0


def test_under_broker_uses_anylinux(cluster):
    cluster.start_broker()
    svc = cluster.broker
    svc.wait_ready()
    handle = svc.submit(
        "n00", ["calypso", "12", "1.0", "3"], rsl="+(adaptive)"
    )
    code = handle.wait()
    assert code == 0
    # Workers were acquired through the broker.
    grants = svc.events_of("grant")
    assert len(grants) >= 3
    cluster.assert_no_crashes()


def test_bad_arguments(cluster):
    master = cluster.run_command("n00", ["calypso", "0", "1.0", "2"])
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 1
    master = cluster.run_command("n00", ["calypso"])
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 1
