"""Tests for the CalypsoRuntime library API (multi-phase adaptive programs)."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.signals import SIGKILL
from repro.systems.calypso import CalypsoRuntime, ParallelStep


@pytest.fixture
def cluster():
    c = Cluster(ClusterSpec.uniform(4))
    c.machine("n00").fs.write("/home/user/.hosts", "n01\nn02\n")
    return c


def run_app(cluster, body, host="n00"):
    cluster.system_bin.register("testapp", body)
    proc = cluster.run_command(host, ["testapp"])
    cluster.env.run(until=proc.terminated)
    return proc


def test_single_phase_returns_ordered_results(cluster):
    collected = {}

    def app(proc):
        runtime = CalypsoRuntime(proc, target_workers=2)
        runtime.start()
        results = yield from runtime.run_phase(
            [ParallelStep(work=0.5, payload=f"p{i}") for i in range(8)]
        )
        runtime.shutdown()
        collected["results"] = results
        return 0

    proc = run_app(cluster, app)
    assert proc.exit_code == 0
    assert collected["results"] == [f"p{i}" for i in range(8)]
    cluster.assert_no_crashes()


def test_multiple_phases_reuse_worker_pool(cluster):
    counts = {}

    def app(proc):
        runtime = CalypsoRuntime(proc, target_workers=2)
        runtime.start()
        a = yield from runtime.run_phase(
            [ParallelStep(work=0.5, payload=i) for i in range(4)]
        )
        # sequential section
        yield proc.sleep(1.0)
        b = yield from runtime.run_phase(
            [ParallelStep(work=0.5, payload=i * 10) for i in range(4)]
        )
        counts["a"], counts["b"] = a, b
        counts["workers_seen"] = runtime.workers_seen
        runtime.shutdown()
        return 0

    proc = run_app(cluster, app)
    assert proc.exit_code == 0
    assert counts["a"] == [0, 1, 2, 3]
    assert counts["b"] == [0, 10, 20, 30]
    # The pool persisted across phases: exactly two workers ever joined.
    assert counts["workers_seen"] == 2


def test_empty_phase_completes_immediately(cluster):
    def app(proc):
        runtime = CalypsoRuntime(proc, target_workers=1)
        runtime.start()
        results = yield from runtime.run_phase([])
        runtime.shutdown()
        assert results == []
        yield proc.sleep(0)
        return 0

    proc = run_app(cluster, app)
    assert proc.exit_code == 0


def test_custom_worker_program_computes_results(cluster):
    @cluster.system_bin.register("squareworker")
    def squareworker(proc):
        from repro.os.errors import ConnectionClosed

        conn = yield proc.connect(proc.argv[1], int(proc.argv[2]))
        conn.send({"type": "worker_hello", "host": proc.machine.name})
        try:
            while True:
                msg = yield conn.recv()
                if msg.get("type") != "assign":
                    break
                yield proc.compute(float(msg["work"]))
                value = int(msg["payload"]) ** 2
                conn.send(
                    {"type": "result", "step": msg["step"], "value": value}
                )
        except ConnectionClosed:
            return 0
        return 0

    outcome = {}

    def app(proc):
        runtime = CalypsoRuntime(
            proc, target_workers=2, worker_program="squareworker"
        )
        runtime.start()
        results = yield from runtime.run_phase(
            [ParallelStep(work=0.3, payload=i) for i in range(6)]
        )
        runtime.shutdown()
        outcome["results"] = results
        return 0

    proc = run_app(cluster, app)
    assert proc.exit_code == 0
    assert outcome["results"] == [0, 1, 4, 9, 16, 25]
    cluster.assert_no_crashes()


def test_worker_murder_mid_phase_recovered(cluster):
    outcome = {}

    def app(proc):
        runtime = CalypsoRuntime(proc, target_workers=2)
        runtime.start()
        results = yield from runtime.run_phase(
            [ParallelStep(work=1.0, payload=i) for i in range(10)]
        )
        runtime.shutdown()
        outcome["results"] = results
        return 0

    cluster.system_bin.register("testapp", app)
    proc = cluster.run_command("n00", ["testapp"])

    def killer():
        yield cluster.env.timeout(2.5)
        victims = [
            p
            for p in cluster.machine("n01").procs.values()
            if p.argv[0] == "calypso_worker"
        ]
        if victims:
            victims[0].signal(SIGKILL)

    cluster.env.process(killer())
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
    assert outcome["results"] == list(range(10))  # nothing lost
    cluster.assert_no_crashes()


def test_run_phase_while_running_rejected(cluster):
    def app(proc):
        runtime = CalypsoRuntime(proc, target_workers=1)
        runtime.start()
        gen = runtime.run_phase([ParallelStep(work=5.0)])
        first_event = next(gen)  # phase started, not finished
        try:
            inner = runtime.run_phase([ParallelStep(work=1.0)])
            next(inner)
        except RuntimeError:
            runtime.shutdown()
            yield proc.sleep(0)
            return 0
        return 1

    proc = run_app(cluster, app)
    assert proc.exit_code == 0


def test_shutdown_then_run_rejected(cluster):
    def app(proc):
        runtime = CalypsoRuntime(proc, target_workers=1)
        runtime.start()
        runtime.shutdown()
        try:
            gen = runtime.run_phase([ParallelStep(work=1.0)])
            next(gen)
        except RuntimeError:
            yield proc.sleep(0)
            return 0
        return 1

    proc = run_app(cluster, app)
    assert proc.exit_code == 0


def test_invalid_worker_count():
    cluster = Cluster(ClusterSpec.uniform(2))

    def app(proc):
        try:
            CalypsoRuntime(proc, target_workers=0)
        except ValueError:
            yield proc.sleep(0)
            return 0
        return 1

    cluster.system_bin.register("testapp", app)
    proc = cluster.run_command("n00", ["testapp"])
    cluster.env.run(until=proc.terminated)
    assert proc.exit_code == 0
