"""Integration tests for the LAM/MPI substrate."""

import pytest

from repro.cluster import Cluster, ClusterSpec


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(4))


def run_cmd(cluster, host, argv, uid="user"):
    proc = cluster.run_command(host, argv, uid=uid)
    cluster.env.run(until=proc.terminated)
    return proc


def lamds_on(cluster, host):
    return [
        p for p in cluster.machine(host).procs.values() if p.argv[0] == "lamd"
    ]


def test_lamboot_starts_universe(cluster):
    proc = run_cmd(cluster, "n00", ["lamboot", "n01", "n02"])
    assert proc.exit_code == 0
    for host in ("n00", "n01", "n02"):
        assert len(lamds_on(cluster, host)) == 1
    cluster.assert_no_crashes()


def test_lamgrow_adds_node(cluster):
    run_cmd(cluster, "n00", ["lamboot"])
    proc = run_cmd(cluster, "n00", ["lamgrow", "n03"])
    assert proc.exit_code == 0
    assert len(lamds_on(cluster, "n03")) == 1


def test_lamgrow_without_universe_fails(cluster):
    proc = run_cmd(cluster, "n00", ["lamgrow", "n01"])
    assert proc.exit_code == 1


def test_lamgrow_symbolic_fails_without_broker(cluster):
    run_cmd(cluster, "n00", ["lamboot"])
    proc = run_cmd(cluster, "n00", ["lamgrow", "anylinux"])
    assert proc.exit_code == 1  # tolerated failed attempt


def test_unexpected_lamd_rejected(cluster):
    run_cmd(cluster, "n00", ["lamboot"])
    host, port = cluster.machine("n00").fs.read("/home/user/.lamd").split()
    rogue = cluster.run_command("n02", ["lamd", "-remote", host, port])
    cluster.env.run(until=rogue.terminated)
    assert rogue.exit_code == 1
    assert lamds_on(cluster, "n02") == []


def test_lamshrink_removes_node(cluster):
    run_cmd(cluster, "n00", ["lamboot", "n01"])
    proc = run_cmd(cluster, "n00", ["lamshrink", "n01"])
    assert proc.exit_code == 0
    assert lamds_on(cluster, "n01") == []


def test_lamhalt_tears_down(cluster):
    run_cmd(cluster, "n00", ["lamboot", "n01", "n02"])
    run_cmd(cluster, "n00", ["lamhalt"])
    for host in ("n00", "n01", "n02"):
        assert lamds_on(cluster, host) == []
    assert not cluster.machine("n00").fs.exists("/home/user/.lamd")
    cluster.assert_no_crashes()


def test_lam_per_host_slower_than_pvm(cluster):
    """Paper Table 3: LAM's per-host costs exceed PVM's."""
    t0 = cluster.now
    run_cmd(cluster, "n00", ["pvm", "add", "n01"])
    pvm_time = cluster.now - t0
    cluster2 = Cluster(ClusterSpec.uniform(4))
    t0 = cluster2.now
    proc = cluster2.run_command("n00", ["lamboot", "n01"])
    cluster2.env.run(until=proc.terminated)
    lam_time = cluster2.now - t0
    assert lam_time > pvm_time


def test_lam_job_add_anylinux_via_module(cluster):
    cluster.start_broker()
    svc = cluster.broker
    svc.wait_ready()
    job = svc.submit("n00", ["lam"], rsl='+(module="lam")', uid="mia")
    cluster.env.run(until=cluster.now + 3.0)
    grow = cluster.run_command("n00", ["lamgrow", "anylinux"], uid="mia")
    cluster.env.run(until=grow.terminated)
    assert grow.exit_code == 1  # phase I failure
    cluster.env.run(until=cluster.now + 10.0)
    remotes = [
        p
        for m in cluster.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "lamd" and "-remote" in p.argv
    ]
    assert len(remotes) == 1
    assert remotes[0].parent.argv[0] == "subapp"
    record = job.job_record()
    assert svc.holdings()[record.jobid] == [remotes[0].machine.name]
    cluster.assert_no_crashes()
