"""Integration tests for the PLinda substrate."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.signals import SIGKILL
from repro.sim import Environment
from repro.systems.plinda.space import TupleSpace, tuple_matches


# -- pure tuple-space unit tests -------------------------------------------


def test_tuple_matching():
    assert tuple_matches(("task", None), ("task", 3))
    assert not tuple_matches(("task", None), ("result", 3))
    assert not tuple_matches(("task",), ("task", 3))
    assert tuple_matches((None, None), ("a", "b"))


def test_space_out_take():
    env = Environment()
    space = TupleSpace(env)
    space.out(("task", 1))
    got = {}

    def taker():
        tup = yield space.take(("task", None))
        got["tup"] = tup

    env.process(taker())
    env.run()
    assert got["tup"] == ("task", 1)
    assert len(space) == 0


def test_space_read_is_non_destructive():
    env = Environment()
    space = TupleSpace(env)
    space.out(("cfg", 42))

    def reader():
        tup = yield space.read(("cfg", None))
        return tup

    p = env.process(reader())
    assert env.run(p) == ("cfg", 42)
    assert len(space) == 1


def test_space_take_blocks_until_out():
    env = Environment()
    space = TupleSpace(env)
    times = {}

    def taker():
        yield space.take(("x",))
        times["got"] = env.now

    def producer():
        yield env.timeout(3.0)
        space.out(("x",))

    env.process(taker())
    env.process(producer())
    env.run()
    assert times["got"] == pytest.approx(3.0)


def test_transaction_abort_restores_takes():
    env = Environment()
    space = TupleSpace(env)
    space.out(("task", 1))
    space.begin(7)

    def taker():
        yield space.take(("task", None), txn_id=7)

    env.process(taker())
    env.run()
    assert len(space) == 0
    space.abort(7)
    assert len(space) == 1
    assert space.try_read(("task", None)) == ("task", 1)


def test_transaction_commit_is_final():
    env = Environment()
    space = TupleSpace(env)
    space.out(("task", 1))
    space.begin(7)

    def taker():
        yield space.take(("task", None), txn_id=7)

    env.process(taker())
    env.run()
    space.commit(7)
    space.abort(7)  # after commit this must be a no-op
    assert len(space) == 0


def test_transaction_abort_withdraws_outs():
    env = Environment()
    space = TupleSpace(env)
    space.begin(1)
    space.out(("partial", 1), txn_id=1)
    space.abort(1)
    assert len(space) == 0


# -- full-system tests ------------------------------------------------------


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(4))


def hostfile(cluster, host, uid, entries):
    cluster.machine(host).fs.write(
        f"/home/{uid}/.hosts", "".join(e + "\n" for e in entries)
    )


def test_bag_of_tasks_completes(cluster):
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["plinda", "8", "1.0", "2"])
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 0
    assert 4.0 <= cluster.now <= 9.0
    cluster.assert_no_crashes()


def test_worker_kill_mid_task_task_redone(cluster):
    """The transactional guarantee: a task taken by a killed worker
    reappears and is completed by another worker."""
    hostfile(cluster, "n00", "user", ["n01", "n02"])
    master = cluster.run_command("n00", ["plinda", "10", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.2)
    victims = [
        p
        for p in cluster.machine("n01").procs.values()
        if p.argv[0] == "plinda_worker"
    ]
    assert victims
    victims[0].signal(SIGKILL)
    cluster.env.run(until=master.terminated)
    # All 10 results collected despite the murder.
    assert master.exit_code == 0
    cluster.assert_no_crashes()


def test_under_broker(cluster):
    cluster.start_broker()
    svc = cluster.broker
    svc.wait_ready()
    handle = svc.submit(
        "n00", ["plinda", "9", "1.0", "3"], rsl="+(adaptive)"
    )
    assert handle.wait() == 0
    assert len(svc.events_of("grant")) >= 3
    cluster.assert_no_crashes()


def test_server_cleans_advertisement(cluster):
    hostfile(cluster, "n00", "user", ["n01"])
    master = cluster.run_command("n00", ["plinda", "2", "0.5", "1"])
    cluster.env.run(until=master.terminated)
    assert not cluster.machine("n00").fs.exists("/home/user/.plinda")
