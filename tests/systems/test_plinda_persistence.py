"""Tests for PLinda's persistence: server crash + checkpoint recovery."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.signals import SIGKILL
from repro.sim import Environment
from repro.systems.plinda.server import PLINDA_CKPT, _committed_tuples
from repro.systems.plinda.space import TupleSpace


@pytest.fixture
def cluster():
    c = Cluster(ClusterSpec.uniform(4))
    c.machine("n00").fs.write("/home/user/.hosts", "n01\nn02\n")
    return c


def server_procs(cluster, host="n00"):
    return [
        p
        for p in cluster.machine(host).procs.values()
        if p.argv[0] == "plinda_server"
    ]


# -- committed-state computation (pure) ------------------------------------


def test_committed_state_is_store_plus_open_takes():
    env = Environment()
    space = TupleSpace(env)
    space.out(("task", 1))
    space.out(("task", 2))
    space.begin(7)

    def taker():
        yield space.take(("task", 1), txn_id=7)

    env.process(taker())
    env.run()
    space.out(("partial", 9), txn_id=7)  # uncommitted write
    committed = sorted(_committed_tuples(space))
    # The open take is restored, the uncommitted out is excluded.
    assert committed == [("task", 1), ("task", 2)]


def test_committed_state_after_commit():
    env = Environment()
    space = TupleSpace(env)
    space.out(("task", 1))
    space.begin(7)

    def taker():
        yield space.take(("task", 1), txn_id=7)

    env.process(taker())
    env.run()
    space.out(("result", 1), txn_id=7)
    space.commit(7)
    assert _committed_tuples(space) == [("result", 1)]


# -- full-system crash/recovery ----------------------------------------------


def test_checkpoint_file_written(cluster):
    master = cluster.run_command("n00", ["plinda", "4", "2.0", "2"])
    cluster.env.run(until=cluster.now + 2.0)
    assert cluster.machine("n00").fs.exists("/home/user/.plinda_ckpt")
    cluster.env.run(until=master.terminated)
    cluster.env.run(until=cluster.now + 1.0)  # let the server finish teardown
    # Cleaned up on orderly halt.
    assert not cluster.machine("n00").fs.exists("/home/user/.plinda_ckpt")


def test_server_crash_recovery_completes_computation(cluster):
    master = cluster.run_command("n00", ["plinda", "10", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.0)
    (server,) = server_procs(cluster)
    server.signal(SIGKILL)
    cluster.env.run(until=master.terminated)
    # The master restarted the server from its checkpoint; every one of the
    # 10 results was collected despite the crash.
    assert master.exit_code == 0
    cluster.assert_no_crashes()


def test_server_crash_twice_still_completes(cluster):
    master = cluster.run_command("n00", ["plinda", "12", "1.0", "2"])
    for _ in range(2):
        cluster.env.run(until=cluster.now + 3.0)
        servers = server_procs(cluster)
        if servers:
            servers[0].signal(SIGKILL)
    cluster.env.run(until=master.terminated)
    assert master.exit_code == 0
    cluster.assert_no_crashes()


def test_workers_reattach_to_restarted_server(cluster):
    master = cluster.run_command("n00", ["plinda", "30", "1.0", "2"])
    cluster.env.run(until=cluster.now + 3.0)
    (server,) = server_procs(cluster)
    old_pid = server.pid
    server.signal(SIGKILL)
    cluster.env.run(until=cluster.now + 5.0)
    servers = server_procs(cluster)
    assert servers and servers[0].pid != old_pid
    # Workers found the new advertisement and are computing again.
    workers = [
        p
        for host in ("n01", "n02")
        for p in cluster.machine(host).procs.values()
        if p.argv[0] == "plinda_worker"
    ]
    assert len(workers) == 2
    master.kill_tree(SIGKILL)
