"""Integration tests for the PVM substrate — with and without the broker."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.process import OSProcess


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(5))


def run_cmd(cluster, host, argv, uid="user"):
    proc = cluster.run_command(host, argv, uid=uid)
    cluster.env.run(until=proc.terminated)
    return proc


def pvmds_on(cluster, host):
    return [
        p for p in cluster.machine(host).procs.values() if p.argv[0] == "pvmd"
    ]


def test_console_boots_master_daemon(cluster):
    run_cmd(cluster, "n00", ["pvm", "conf"])
    assert len(pvmds_on(cluster, "n00")) == 1
    assert cluster.machine("n00").fs.exists("/home/user/.pvmd")
    cluster.assert_no_crashes()


def test_add_explicit_hosts(cluster):
    proc = run_cmd(cluster, "n00", ["pvm", "add", "n01", "n02"])
    assert proc.exit_code == 0
    assert len(pvmds_on(cluster, "n01")) == 1
    assert len(pvmds_on(cluster, "n02")) == 1
    cluster.assert_no_crashes()


def test_add_timing_roughly_linear(cluster):
    t0 = cluster.now
    run_cmd(cluster, "n00", ["pvm", "add", "n01"])
    one = cluster.now - t0
    t1 = cluster.now
    run_cmd(cluster, "n00", ["pvm", "add", "n02", "n03", "n04"])
    three = cluster.now - t1
    # Both invocations pay one console startup; each add costs roughly
    # rsh + slave startup (~1 s), so the 3-host run exceeds the 1-host run
    # by two marginal adds.
    marginal = (three - one) / 2.0
    assert 0.8 <= marginal <= 1.4
    assert three > one


def test_add_unknown_host_fails_but_console_survives(cluster):
    proc = run_cmd(cluster, "n00", ["pvm", "add", "zz99"])
    assert proc.exit_code == 1  # required condition 3: tolerate failed adds
    proc = run_cmd(cluster, "n00", ["pvm", "add", "n01"])
    assert proc.exit_code == 0


def test_add_symbolic_name_fails_without_broker(cluster):
    proc = run_cmd(cluster, "n00", ["pvm", "add", "anylinux"])
    assert proc.exit_code == 1


def test_unexpected_slave_rejected(cluster):
    run_cmd(cluster, "n00", ["pvm", "conf"])  # boot master
    host, port = cluster.machine("n00").fs.read("/home/user/.pvmd").split()
    # An interloper starts a slave pvmd by hand from n03.
    rogue = cluster.run_command(
        "n03", ["pvmd", "-slave", host, port], uid="user"
    )
    cluster.env.run(until=rogue.terminated)
    assert rogue.exit_code == 1  # rejected: master never asked for n03
    assert pvmds_on(cluster, "n03") == []


def test_delete_host_stops_slave(cluster):
    run_cmd(cluster, "n00", ["pvm", "add", "n01"])
    assert len(pvmds_on(cluster, "n01")) == 1
    proc = run_cmd(cluster, "n00", ["pvm", "delete", "n01"])
    assert proc.exit_code == 0
    assert pvmds_on(cluster, "n01") == []


def test_halt_tears_everything_down(cluster):
    run_cmd(cluster, "n00", ["pvm", "add", "n01", "n02"])
    run_cmd(cluster, "n00", ["pvm", "halt"])
    for host in ("n00", "n01", "n02"):
        assert pvmds_on(cluster, host) == []
    assert not cluster.machine("n00").fs.exists("/home/user/.pvmd")
    cluster.assert_no_crashes()


def test_spawn_round_robin(cluster):
    placed = {}

    @cluster.system_bin.register("task")
    def task(proc):
        placed.setdefault(proc.machine.name, 0)
        placed[proc.machine.name] += 1
        yield proc.sleep(1.0)

    run_cmd(cluster, "n00", ["pvm", "add", "n01", "n02"])
    run_cmd(cluster, "n00", ["pvm", "spawn", "6", "task"])
    cluster.env.run(until=cluster.now + 3.0)
    assert placed == {"n00": 2, "n01": 2, "n02": 2}


def test_pvmrc_script_drives_console(cluster):
    """The hook the pvm_grow module uses: commands in ~/.pvmrc."""
    run_cmd(cluster, "n00", ["pvm", "conf"])  # boot master
    cluster.machine("n00").fs.write("/home/user/.pvmrc", "add n02\nquit\n")
    proc = run_cmd(cluster, "n00", ["pvm"])
    assert proc.exit_code == 0
    assert len(pvmds_on(cluster, "n02")) == 1


def test_slave_loss_tolerated(cluster):
    """Killing a slave daemon drops the host; the VM keeps working."""
    from repro.os.signals import SIGKILL

    run_cmd(cluster, "n00", ["pvm", "add", "n01", "n02"])
    (slave,) = pvmds_on(cluster, "n01")
    slave.signal(SIGKILL)
    cluster.env.run(until=cluster.now + 1.0)
    # Re-adding n01 works: the master dropped it from its tables.
    proc = run_cmd(cluster, "n00", ["pvm", "add", "n01"])
    assert proc.exit_code == 0
    assert len(pvmds_on(cluster, "n01")) == 1
    cluster.assert_no_crashes()


# -- under the broker -------------------------------------------------------


@pytest.fixture
def brokered(cluster):
    cluster.start_broker()
    cluster.broker.wait_ready()
    return cluster


def test_pvm_job_add_anylinux_via_module(brokered):
    svc = brokered.broker
    job = svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    brokered.env.run(until=brokered.now + 3.0)
    # The attached console + master daemon are up; now the user asks for a
    # broker-chosen machine.
    add = brokered.run_command("n00", ["pvm", "add", "anylinux"], uid="pat")
    brokered.env.run(until=add.terminated)
    # Phase I: the add itself reports failure...
    assert add.exit_code == 1
    # ...but phase II (module grow) adds a real machine shortly after.
    brokered.env.run(until=brokered.now + 8.0)
    slaves = [
        p
        for m in brokered.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "pvmd" and "-slave" in p.argv
    ]
    assert len(slaves) == 1
    # The slave runs under a subapp (phase II was wrapped).
    assert slaves[0].parent is not None
    assert slaves[0].parent.argv[0] == "subapp"
    # The broker accounted the machine to the PVM job.
    record = job.job_record()
    assert svc.holdings()[record.jobid] == [slaves[0].machine.name]
    brokered.assert_no_crashes()


def test_pvm_explicit_add_passthrough_under_broker(brokered):
    svc = brokered.broker
    svc.submit("n00", ["pvm"], rsl='+(module="pvm")', uid="pat")
    brokered.env.run(until=brokered.now + 3.0)
    add = brokered.run_command("n00", ["pvm", "add", "n02"], uid="pat")
    brokered.env.run(until=add.terminated)
    assert add.exit_code == 0
    slaves = [
        p
        for p in brokered.machine("n02").procs.values()
        if p.argv[0] == "pvmd"
    ]
    assert len(slaves) == 1
    # Explicit name: no subapp wrapping, no broker allocation.
    assert slaves[0].parent.argv[0] == "rshd"
    assert svc.holdings() == {}
    assert svc.events_of("machine_request") == []
