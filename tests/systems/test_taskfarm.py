"""Integration tests for the self-scheduling task farms (PVM and LAM/MPI)."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.os.signals import SIGKILL


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.uniform(4))


def run_cmd(cluster, host, argv, uid="user"):
    proc = cluster.run_command(host, argv, uid=uid)
    cluster.env.run(until=proc.terminated)
    return proc


def workers_everywhere(cluster):
    return [
        p
        for m in cluster.machines.values()
        for p in m.procs.values()
        if p.argv[0] == "farmworker"
    ]


# -- PVM farm ---------------------------------------------------------------


def test_pvm_farm_completes(cluster):
    run_cmd(cluster, "n00", ["pvm", "add", "n01", "n02"])
    t0 = cluster.now
    farm = run_cmd(cluster, "n00", ["pvm_farm", "12", "1.0"])
    assert farm.exit_code == 0
    # 12 tasks x 1 CPU-second over 3 hosts: ~4 s of compute + startup.
    assert 4.0 <= cluster.now - t0 <= 8.0
    cluster.assert_no_crashes()


def test_pvm_farm_spawns_one_worker_per_host(cluster):
    run_cmd(cluster, "n00", ["pvm", "add", "n01", "n02"])
    farm = cluster.run_command("n00", ["pvm_farm", "300", "1.0"])
    cluster.env.run(until=cluster.now + 2.0)
    hosts = sorted({w.machine.name for w in workers_everywhere(cluster)})
    assert hosts == ["n00", "n01", "n02"]
    farm.kill_tree(SIGKILL)


def test_pvm_farm_without_vm_fails(cluster):
    farm = run_cmd(cluster, "n00", ["pvm_farm", "4", "1.0"])
    assert farm.exit_code == 1


def test_pvm_farm_survives_worker_murder(cluster):
    run_cmd(cluster, "n00", ["pvm", "add", "n01"])
    farm = cluster.run_command("n00", ["pvm_farm", "10", "1.0"])
    cluster.env.run(until=cluster.now + 2.5)
    victims = [
        w for w in workers_everywhere(cluster) if w.machine.name == "n01"
    ]
    assert victims
    victims[0].signal(SIGKILL)
    cluster.env.run(until=farm.terminated)
    # The task held by the murdered worker was requeued and finished.
    assert farm.exit_code == 0
    cluster.assert_no_crashes()


# -- mpirun / MPI farm --------------------------------------------------------


def test_mpirun_places_tasks_round_robin(cluster):
    placed = {}

    @cluster.system_bin.register("mpitask")
    def mpitask(proc):
        placed.setdefault(proc.machine.name, 0)
        placed[proc.machine.name] += 1
        yield proc.sleep(0.5)

    run_cmd(cluster, "n00", ["lamboot", "n01", "n02"])
    launcher = run_cmd(cluster, "n00", ["mpirun", "6", "mpitask"])
    assert launcher.exit_code == 0
    cluster.env.run(until=cluster.now + 2.0)
    assert placed == {"n00": 2, "n01": 2, "n02": 2}


def test_mpirun_without_universe_fails(cluster):
    launcher = run_cmd(cluster, "n00", ["mpirun", "2", "null"])
    assert launcher.exit_code == 1


def test_mpi_farm_completes(cluster):
    run_cmd(cluster, "n00", ["lamboot", "n01", "n02", "n03"])
    t0 = cluster.now
    farm = run_cmd(cluster, "n00", ["mpi_farm", "16", "1.0"])
    assert farm.exit_code == 0
    assert 4.0 <= cluster.now - t0 <= 9.0
    cluster.assert_no_crashes()


def test_mpi_farm_under_broker_with_module_growth(cluster):
    """The full stack: an unmodified MPI program gets machines just-in-time
    through lamgrow anylinux, then computes on them."""
    cluster.start_broker()
    svc = cluster.broker
    svc.wait_ready()
    svc.submit("n00", ["lam"], rsl='+(module="lam")', uid="mia")
    cluster.env.run(until=cluster.now + 3.0)
    for _ in range(2):
        grow = cluster.run_command(
            "n00", ["lamgrow", "anylinux"], uid="mia"
        )
        cluster.env.run(until=grow.terminated)
    # Wait for the async phase-II adds.
    deadline = cluster.now + 30.0
    fs = cluster.machine("n00").fs
    while cluster.now < deadline:
        cluster.env.run(until=cluster.now + 0.5)
        if (
            fs.exists("/home/mia/.lam_nodes")
            and len(fs.read_lines("/home/mia/.lam_nodes")) == 3
        ):
            break
    assert len(fs.read_lines("/home/mia/.lam_nodes")) == 3

    farm = cluster.run_command("n00", ["mpi_farm", "9", "1.0"], uid="mia")
    cluster.env.run(until=farm.terminated)
    assert farm.exit_code == 0
    cluster.assert_no_crashes()
