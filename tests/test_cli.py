"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "grants" in out
    assert "n01" in out  # the Gantt rows


def test_single_table_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "rsh' anylinux null" in out


def test_utilization_quick(capsys):
    assert main(["utilization", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "total detected idleness" in out


def test_chaos_command(capsys, tmp_path):
    trace = tmp_path / "chaos.jsonl"
    assert main(["chaos", "--seed", "1", "--verbose", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "jobs completed" in out
    assert "fault plan:" in out
    assert "machine_crash" in out
    assert trace.exists() and trace.stat().st_size > 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_no_command_rejected():
    with pytest.raises(SystemExit):
        main([])
