"""End-to-end determinism: identical seeds give identical histories.

DESIGN.md's determinism claim, verified at the whole-stack level: two
independent runs of a non-trivial brokered workload produce byte-identical
broker event logs, and changing the seed changes stochastic traces without
breaking any invariant.
"""

from repro.cluster import Cluster, ClusterSpec, MachineSpec
from tests.broker.conftest import install_greedy


def _run_scenario(seed):
    spec = ClusterSpec(
        machines=[
            MachineSpec(name="n00"),
            MachineSpec(name="n01"),
            MachineSpec(name="n02"),
            MachineSpec(name="p00", private_owner="ann"),
        ],
        seed=seed,
    )
    cluster = Cluster(spec)
    svc = cluster.start_broker()
    svc.wait_ready()
    cluster.add_owner_activity("p00", mean_away=120.0, mean_present=40.0)
    install_greedy(cluster)
    svc.submit("n00", ["greedy", "3"], rsl="+(adaptive)", uid="a")
    cluster.env.run(until=cluster.now + 5.0)
    rng = cluster.env.rng.stream("scenario")
    for i in range(4):
        cluster.env.run(until=cluster.now + float(rng.uniform(5.0, 20.0)))
        svc.submit(
            "n00",
            ["rsh", "anylinux", "compute", f"{float(rng.uniform(3, 12)):.2f}"],
            uid=f"s{i}",
        )
    cluster.env.run(until=600.0)
    cluster.assert_no_crashes()
    return svc.events


def test_same_seed_identical_event_log():
    first = _run_scenario(42)
    second = _run_scenario(42)
    assert first == second
    assert len(first) > 10  # a real history, not a trivial one


def test_different_seed_different_history():
    a = _run_scenario(42)
    b = _run_scenario(43)
    # Owner activity and workload draws differ, so the logs diverge...
    assert a != b
    # ...but both contain the same structural phases.
    kinds_a = {e["event"] for e in a}
    kinds_b = {e["event"] for e in b}
    assert {"submit", "machine_request", "grant"} <= kinds_a & kinds_b
