"""Unit tests for the small supporting modules: calibration, protocol,
workload traces, metrics, hostfile, program registry and rbstat rendering."""

import pytest

from repro.broker import protocol
from repro.broker.modules import (
    expect_marker_path,
    grow_program,
    halt_program,
    shrink_program,
)
from repro.broker.tools import format_status
from repro.calibration import DEFAULT, Calibration
from repro.cluster import Cluster, ClusterSpec
from repro.metrics import ElapsedTimer, UtilizationMeter
from repro.os.programs import NoSuchProgram, ProgramDirectory, resolve
from repro.sim import Environment
from repro.workloads import periodic_sequential_jobs


# -- calibration ----------------------------------------------------------


def test_default_calibration_is_frozen():
    with pytest.raises(Exception):
        DEFAULT.rsh_connect = 1.0  # type: ignore[misc]


def test_calibration_overrides():
    cal = Calibration(sigterm_grace=1.0)
    assert cal.sigterm_grace == 1.0
    assert cal.rsh_connect == DEFAULT.rsh_connect


def test_calibration_values_positive():
    for name, value in vars(DEFAULT).items():
        assert value > 0, name


# -- protocol ---------------------------------------------------------------


def test_protocol_messages_carry_type():
    samples = [
        protocol.daemon_hello("h"),
        protocol.daemon_report({}),
        protocol.submit("u", "h", "", ["x"], False),
        protocol.submit_ack(1),
        protocol.machine_request(1, "anylinux", 2, True),
        protocol.machine_grant(2, "h"),
        protocol.machine_denied(2, "no"),
        protocol.revoke("h"),
        protocol.released(1, "h"),
        protocol.grow(2, "h"),
        protocol.job_done(1, 0),
        protocol.rsh_request("h", ["cmd"], "u"),
        protocol.rsh_exec("h", True, "tok"),
        protocol.rsh_fail("r"),
        protocol.subapp_hello("tok", "h", 3),
        protocol.subapp_run(["cmd"]),
        protocol.subapp_started(3),
        protocol.subapp_revoke(),
        protocol.subapp_exit("h", 0),
        protocol.status_request(),
        protocol.status_reply({}),
        protocol.halt_job(1),
        protocol.halt_ack(1, True),
        protocol.halt(),
    ]
    types = [m["type"] for m in samples]
    assert all(types)
    assert len(set(types)) == len(types)  # all distinct


def test_protocol_copies_argv():
    argv = ["a"]
    msg = protocol.submit("u", "h", "", argv, False)
    argv.append("b")
    assert msg["argv"] == ["a"]


# -- module conventions -------------------------------------------------------


def test_module_program_names():
    assert grow_program("pvm") == "pvm_grow"
    assert shrink_program("lam") == "lam_shrink"
    assert halt_program("x") == "x_halt"
    assert expect_marker_path("n07") == "~/.rb_expect_n07"


# -- workload traces ----------------------------------------------------------


def test_periodic_trace_shape():
    env = Environment(seed=5)
    trace = periodic_sequential_jobs(env, period=100.0, horizon=1000.0)
    assert len(trace) == 9  # arrivals at 100..900
    assert trace.arrivals == [100.0 * i for i in range(1, 10)]
    for duration in trace.durations:
        assert 60.0 <= duration <= 600.0


def test_periodic_trace_deterministic_per_seed():
    t1 = periodic_sequential_jobs(Environment(seed=5), horizon=2000.0)
    t2 = periodic_sequential_jobs(Environment(seed=5), horizon=2000.0)
    t3 = periodic_sequential_jobs(Environment(seed=6), horizon=2000.0)
    assert t1.durations == t2.durations
    assert t1.durations != t3.durations


def test_periodic_trace_validation():
    env = Environment()
    with pytest.raises(ValueError):
        periodic_sequential_jobs(env, period=0.0)
    with pytest.raises(ValueError):
        periodic_sequential_jobs(env, min_minutes=5, max_minutes=1)


# -- metrics -----------------------------------------------------------------


def test_elapsed_timer():
    env = Environment()
    timer = ElapsedTimer(env).start()

    def waiter():
        yield env.timeout(4.0)

    env.run(env.process(waiter()))
    assert timer.elapsed == pytest.approx(4.0)
    assert timer.stop() == pytest.approx(4.0)


def test_elapsed_timer_requires_start():
    timer = ElapsedTimer(Environment())
    with pytest.raises(RuntimeError):
        _ = timer.elapsed


def test_utilization_meter_all_idle():
    cluster = Cluster(ClusterSpec.uniform(2))
    meter = UtilizationMeter(cluster, ["n00", "n01"])
    meter.start()
    cluster.env.run(until=10.0)
    assert meter.idleness() == pytest.approx(1.0)


def test_utilization_meter_counts_busy_machines():
    cluster = Cluster(ClusterSpec.uniform(2))
    meter = UtilizationMeter(cluster, ["n00", "n01"])
    proc = cluster.run_command("n00", ["compute", "5.0"])
    meter.start()
    start = cluster.now
    cluster.env.run(until=start + 10.0)
    by_host = meter.utilization_by_host()
    assert by_host["n00"] > 0.4
    assert by_host["n01"] == pytest.approx(0.0)
    assert 0.2 <= meter.utilization() <= 0.3


def test_utilization_meter_requires_start():
    cluster = Cluster(ClusterSpec.uniform(1))
    with pytest.raises(RuntimeError):
        UtilizationMeter(cluster).utilization()


def test_utilization_meter_empty_hosts_is_zero():
    # Regression: an empty host set used to raise ZeroDivisionError.
    cluster = Cluster(ClusterSpec.uniform(1))
    meter = UtilizationMeter(cluster, hosts=[])
    meter.start()
    cluster.env.run(until=1.0)
    assert meter.utilization() == 0.0
    assert meter.idleness() == 1.0


# -- program registry ---------------------------------------------------------


def test_path_order_shadows_names():
    first = ProgramDirectory("first")
    second = ProgramDirectory("second")

    def a(proc):
        yield

    def b(proc):
        yield

    first.register("tool", a)
    second.register("tool", b)
    assert resolve([first, second], "tool") is a
    assert resolve([second, first], "tool") is b


def test_qualified_names_bypass_path_order():
    first = ProgramDirectory("first")
    second = ProgramDirectory("second")

    def a(proc):
        yield

    def b(proc):
        yield

    first.register("tool", a)
    second.register("tool", b)
    assert resolve([first, second], "second:tool") is b


def test_resolve_missing_program():
    directory = ProgramDirectory("d")
    with pytest.raises(NoSuchProgram):
        resolve([directory], "nope")
    with pytest.raises(NoSuchProgram):
        resolve([directory], "other:prog")


def test_register_rejects_colon_names():
    directory = ProgramDirectory("d")
    with pytest.raises(ValueError):
        directory.register("a:b", lambda proc: iter(()))


def test_register_rejects_non_callable():
    directory = ProgramDirectory("d")
    with pytest.raises(TypeError):
        directory.register("x", 42)


def test_directory_contains_and_names():
    directory = ProgramDirectory("d")
    directory.register("b", lambda proc: iter(()))
    directory.register("a", lambda proc: iter(()))
    assert "a" in directory and "c" not in directory
    assert list(directory.names()) == ["a", "b"]


# -- rbstat rendering ---------------------------------------------------------


def test_format_status_renders_all_sections():
    summary = {
        "machines": {
            "n00": {
                "allocated_to": 1,
                "state": "active",
                "console_active": False,
                "load": 2,
            }
        },
        "jobs": {
            1: {
                "user": "ann",
                "adaptive": True,
                "module": None,
                "holdings": 1,
                "done": False,
            }
        },
        "pending": 3,
    }
    text = format_status(summary)
    assert "n00: allocated_to=1 state=active load=2" in text
    assert "job 1: user=ann adaptive=True" in text
    assert "pending requests: 3" in text
