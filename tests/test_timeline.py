"""Unit tests for allocation-timeline folding and Gantt rendering."""

import pytest

from repro.metrics.timeline import (
    allocation_intervals,
    machine_busy_fraction,
    render_gantt,
)


def _events():
    return [
        {"event": "grant", "host": "n01", "jobid": 1, "time": 1.0},
        {"event": "grant", "host": "n02", "jobid": 1, "time": 2.0},
        {"event": "released", "host": "n01", "jobid": 1, "time": 5.0},
        {"event": "grant", "host": "n01", "jobid": 2, "time": 5.5},
        {"event": "job_done", "jobid": 2, "time": 8.0},
        # jobid 1 still holds n02 at the end.
    ]


def test_intervals_fold_grant_release():
    intervals = allocation_intervals(_events())
    by_key = {(iv.host, iv.jobid, iv.start): iv for iv in intervals}
    assert by_key[("n01", 1, 1.0)].end == 5.0
    assert by_key[("n01", 2, 5.5)].end == 8.0  # closed by job_done
    assert by_key[("n02", 1, 2.0)].end is None  # still open


def test_intervals_until_closes_open_ones():
    intervals = allocation_intervals(_events(), until=10.0)
    assert all(iv.end is not None for iv in intervals)
    open_one = [iv for iv in intervals if iv.host == "n02"][0]
    assert open_one.end == 10.0


def test_busy_fraction():
    intervals = allocation_intervals(_events(), until=10.0)
    # n01: [1,5] + [5.5,8] = 6.5 of 10.
    assert machine_busy_fraction(intervals, "n01", 0.0, 10.0) == pytest.approx(
        0.65
    )
    assert machine_busy_fraction(intervals, "nXX", 0.0, 10.0) == 0.0


def test_busy_fraction_clips_to_window():
    intervals = allocation_intervals(_events(), until=10.0)
    # Window [4,6]: n01 covered by [4,5] and [5.5,6] = 1.5 of 2.
    assert machine_busy_fraction(intervals, "n01", 4.0, 6.0) == pytest.approx(
        0.75
    )


def test_render_gantt_shape():
    intervals = allocation_intervals(_events(), until=10.0)
    art = render_gantt(intervals, 0.0, 10.0, width=40)
    lines = art.splitlines()
    assert len(lines) == 3  # header + n01 + n02
    n01 = [l for l in lines if l.startswith("n01")][0]
    assert "1" in n01 and "2" in n01 and "." in n01
    n02 = [l for l in lines if l.startswith("n02")][0]
    assert "2" not in n02.split()[1]


def test_render_gantt_rejects_empty_window():
    with pytest.raises(ValueError):
        render_gantt([], 5.0, 5.0)


def test_gantt_from_live_cluster():
    """End to end: run a short brokered workload and render its timeline."""
    from repro.cluster import Cluster, ClusterSpec

    cluster = Cluster(ClusterSpec.uniform(3))
    svc = cluster.start_broker()
    svc.wait_ready()
    t0 = cluster.now
    handle = svc.submit("n00", ["rsh", "anylinux", "compute", "3.0"])
    handle.wait()
    cluster.env.run(until=cluster.now + 1.0)
    intervals = allocation_intervals(svc.events, until=cluster.now)
    assert len(intervals) == 1
    art = render_gantt(intervals, t0, cluster.now)
    assert intervals[0].host in art
